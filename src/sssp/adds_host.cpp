// The host-threads ADDS engine: the full queue protocol under real
// concurrency.
//
// One manager thread (MTB) and `num_workers` worker threads (WTBs) execute
// the paper's runtime verbatim at host scale:
//
//   * workers push work items (vertex ids) straight into buckets via
//     atomic resv_ptr reservation and WCC publication;
//   * the manager alone scans segment metadata, computes safely-readable
//     ranges, hands them to idle workers through per-worker assignment
//     flags, performs all block allocation/recycling, rotates the bucket
//     window, and (optionally) adjusts Δ from run-time signals;
//   * termination requires two consecutive manager sweeps that find no
//     pending or in-flight work and all workers idle (paper §5.4).
//
// Distances live in a shared AtomicDistArray with CAS fetch-min. An item is
// just a vertex id (as in the paper); a popped vertex is relaxed against
// its *current* distance, so a stale pop costs redundant-but-correct work.
#include "sssp/adds.hpp"

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "queue/assignment.hpp"
#include "queue/push_combiner.hpp"
#include "queue/translation_cache.hpp"
#include "queue/work_queue.hpp"
#include "sssp/atomic_dist.hpp"
#include "sssp/delta_heuristic.hpp"
#include "util/backoff.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace adds {

namespace {

/// Everything one worker thread needs.
template <WeightType W>
struct WorkerContext {
  const CsrGraph<W>* graph = nullptr;
  WorkQueue* queue = nullptr;
  AtomicDistArray<DistT<W>>* dist = nullptr;
  AssignmentFlag* flag = nullptr;
  uint32_t combine_capacity = 0;  // 0: single-item pushes (combining off)
  WorkStats stats;  // thread-local; merged after join
};

/// Pulls the CSR row bounds of `u` toward the cache ahead of use.
template <WeightType W>
inline void prefetch_row_offsets(const CsrGraph<W>& g, VertexId u) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(g.offsets().data() + u, 0 /*read*/, 3 /*high locality*/);
#else
  (void)g;
  (void)u;
#endif
}

template <WeightType W>
void worker_main(WorkerContext<W>& ctx) {
  using Dist = DistT<W>;
  const CsrGraph<W>& g = *ctx.graph;
  const VertexId* const targets = g.targets().data();
  const W* const weights = g.weights().data();
  TranslationCache<8> cache;
  std::optional<PushCombiner> combiner;
  if (ctx.combine_capacity > 0)
    combiner.emplace(*ctx.queue, ctx.combine_capacity);

  // Relaxes one row; pushes go through the combiner when enabled.
  const auto relax_row = [&](VertexId u) {
    const Dist du = ctx.dist->load(u);
    if (du == DistTraits<W>::infinity()) {
      // Only possible for a corrupt queue; the push that enqueued u set a
      // finite distance first.
      ++ctx.stats.stale_skipped;
      return;
    }
    ++ctx.stats.items_processed;
    const EdgeIndex begin = g.edge_begin(u);
    const EdgeIndex end = g.edge_end(u);
    ctx.stats.relaxations += end - begin;
    for (EdgeIndex e = begin; e < end; ++e) {
      const VertexId v = targets[e];
      const Dist nd = du + Dist(weights[e]);
      if (ctx.dist->fetch_min(v, nd)) {
        ++ctx.stats.improvements;
        ++ctx.stats.pushes;
        if (combiner) {
          combiner->push(v, double(nd));
        } else if (ctx.queue->push(v, double(nd)) !=
                   WorkQueue::kPushAborted) {
          ++ctx.stats.queue_reserve_ops;
          ++ctx.stats.queue_publish_ops;
        }
      }
    }
  };

  Backoff idle_backoff;
  while (true) {
    bool should_exit = false;
    const auto assignment = ctx.flag->poll(should_exit);
    if (should_exit) break;
    if (!assignment) {
      idle_backoff.pause();
      continue;
    }
    idle_backoff.reset();
    // Injected worker stall: the assignment sits un-processed (in-flight),
    // exactly like a preempted/wedged WTB. Bounded and abort-observing.
    fault::delay(fault::Site::kWorkerStall, &ctx.queue->abort_flag());

    Bucket& bucket = ctx.queue->physical_bucket(assignment->phys_bucket);
    cache.reset();
    // Row-batched relaxation with one-ahead software prefetch: the next
    // item's vertex id is resolved and its CSR row offsets prefetched
    // while the current row is being relaxed, hiding the offsets-array
    // miss behind the current row's edge work.
    VertexId u = VertexId(cache.read(bucket, assignment->start));
    prefetch_row_offsets(g, u);
    for (uint32_t i = 0; i < assignment->count; ++i) {
      VertexId next = 0;
      if (i + 1 < assignment->count) {
        next = VertexId(cache.read(bucket, assignment->start + i + 1));
        prefetch_row_offsets(g, next);
      }
      relax_row(u);
      u = next;
    }
    // Publication order matters: all pushes above — including every item
    // still staged in the combiner — must be published before the
    // release-increment of the source bucket's CWC, so when the manager
    // observes CWC == resv_ptr it also observes every spawned item.
    if (combiner) combiner->flush_all();
    bucket.complete(assignment->count);
    ctx.flag->done();
  }
  // A worker only exits between assignments, so its lanes are empty; the
  // defensive flush keeps the no-staged-items-while-idle invariant even if
  // termination raced an abort (push_batch no-ops on an aborted queue).
  if (combiner) {
    combiner->flush_all();
    ctx.stats.queue_reserve_ops += combiner->stats().reserve_ops;
    ctx.stats.queue_publish_ops += combiner->stats().publish_ops;
    ctx.stats.batch_flushes += combiner->stats().flushes;
    ctx.stats.combined_items += combiner->stats().flushed_items;
  }
}

}  // namespace

template <WeightType W>
SsspResult<W> adds_host(const CsrGraph<W>& g, VertexId source,
                        const AddsHostOptions& opts) {
  using Dist = DistT<W>;
  WallTimer timer;

  SsspResult<W> r;
  r.solver = "adds-host";
  r.dist.assign(g.num_vertices(), DistTraits<W>::infinity());
  if (g.empty()) return r;
  ADDS_REQUIRE(source < g.num_vertices(), "source vertex out of range");
  ADDS_REQUIRE(opts.num_workers >= 1, "need at least one worker");

  // --- Construct the queue ----------------------------------------------
  uint32_t pool_blocks = opts.pool_blocks;
  if (pool_blocks == 0) {
    // Capacity for several generations of the edge set plus window slack.
    const uint64_t want =
        4 * g.num_edges() / opts.block_words + 4ull * opts.num_buckets + 16;
    pool_blocks = uint32_t(std::min<uint64_t>(want, 65000));
  }
  BlockPool pool(pool_blocks, opts.block_words);
  WorkQueue::Config qcfg;
  qcfg.num_buckets = opts.num_buckets;
  qcfg.bucket.segment_words = opts.segment_words;
  qcfg.bucket.table_size = 64;
  WorkQueue queue(pool, qcfg);

  const double initial_delta =
      opts.delta > 0.0 ? opts.delta : static_delta(g, opts.heuristic_c);
  queue.set_delta(initial_delta);

  DeltaControllerOptions copts = opts.controller;
  copts.enabled = opts.dynamic_delta;
  copts.max_active_buckets = std::min<uint32_t>(copts.max_active_buckets,
                                                opts.num_buckets - 1);
  // Host-scale saturation: all workers busy with a chunk each.
  DeltaController controller(
      copts, double(opts.num_workers) * double(opts.chunk_items),
      initial_delta);

  AtomicDistArray<Dist> dist(g.num_vertices(), DistTraits<W>::infinity());
  dist.store(source, Dist{0});

  // --- Launch workers ------------------------------------------------------
  std::vector<AssignmentFlag> flags(opts.num_workers);
  std::vector<WorkerContext<W>> contexts(opts.num_workers);
  std::vector<std::thread> workers;
  workers.reserve(opts.num_workers);
  for (uint32_t i = 0; i < opts.num_workers; ++i) {
    contexts[i].graph = &g;
    contexts[i].queue = &queue;
    contexts[i].dist = &dist;
    contexts[i].flag = &flags[i];
    contexts[i].combine_capacity =
        opts.write_combining ? opts.combine_capacity : 0;
    workers.emplace_back(worker_main<W>, std::ref(contexts[i]));
  }
  // Single teardown path for both the normal and the error exit. If the
  // manager loop throws (e.g. BlockPool exhaustion on an undersized pool),
  // the destructor aborts the queue (unblocking writers stuck in
  // wait_allocated) before joining — destroying a joinable std::thread
  // calls std::terminate. The normal exit calls join_workers(false)
  // explicitly; the destructor is then a no-op.
  struct WorkerShutdown {
    WorkQueue* queue;
    std::vector<AssignmentFlag>* flags;
    std::vector<std::thread>* workers;
    bool joined = false;
    void join_workers(bool abort) {
      if (joined) return;
      if (abort) queue->request_abort();
      for (auto& f : *flags) f.terminate();
      for (auto& w : *workers)
        if (w.joinable()) w.join();
      joined = true;
    }
    ~WorkerShutdown() { join_workers(true); }
  } shutdown{&queue, &flags, &workers};

  // Seed the source.
  queue.ensure_capacity_all(opts.chunk_items * 2);
  queue.push(source, 0.0);
  ++r.work.pushes;
  ++r.work.queue_reserve_ops;
  ++r.work.queue_publish_ops;

  // --- Manager-side completion-frontier tracking ---------------------------
  //
  // Blocks can only be recycled below an index every worker is finished
  // *reading*. The manager knows exactly which range each worker holds (it
  // assigned it), so it records the range per flag and, when the flag goes
  // idle, feeds it into a per-bucket frontier: blocks wholly below the
  // frontier are recyclable mid-stream. Without this, a bucket whose
  // translation window wraps while reservations are open can wedge its
  // writers (completed blocks would only be freed at full drain).
  struct FlagTrack {
    bool active = false;
    Assignment a;
  };
  std::vector<FlagTrack> tracks(opts.num_workers);
  struct BucketFrontier {
    uint32_t frontier = 0;  // all items below are completed
    std::vector<Assignment> out_of_order;
    void complete(const Assignment& a) {
      out_of_order.push_back(a);
      // Ranges are issued in increasing index order; advance the frontier
      // over every contiguous completed prefix.
      bool advanced = true;
      while (advanced) {
        advanced = false;
        for (size_t i = 0; i < out_of_order.size(); ++i) {
          if (out_of_order[i].start == frontier) {
            frontier += out_of_order[i].count;
            out_of_order[i] = out_of_order.back();
            out_of_order.pop_back();
            advanced = true;
            break;
          }
        }
      }
    }
  };
  std::vector<BucketFrontier> frontiers(opts.num_buckets);

  // --- Manager loop ---------------------------------------------------------
  uint64_t clean_sweeps = 0;
  Backoff sweep_backoff;
  while (true) {
    // External cancellation (watchdog) or a prior abort: tear down. The
    // throw unwinds through WorkerShutdown, which aborts the queue (again,
    // idempotent), terminates the flags and joins the workers.
    if ((opts.cancel != nullptr &&
         opts.cancel->load(std::memory_order_acquire)) ||
        queue.aborted()) {
      queue.request_abort();
      throw Error("adds-host: run aborted (watchdog or external cancel)");
    }
    // Injected manager stall: one sweep goes missing, as if the MTB were
    // preempted. Observes both cancel and queue abort so a multi-second
    // stall cannot out-wait the watchdog's recovery.
    fault::delay(fault::Site::kManagerScanStall, opts.cancel,
                 &queue.abort_flag());

    // Harvest completions: a flag that returned to idle finished its range.
    for (uint32_t i = 0; i < opts.num_workers; ++i) {
      if (tracks[i].active && flags[i].is_idle()) {
        frontiers[tracks[i].a.phys_bucket].complete(tracks[i].a);
        tracks[i].active = false;
      }
    }
    for (uint32_t b = 0; b < opts.num_buckets; ++b)
      queue.physical_bucket(b).recycle_below(frontiers[b].frontier);

    queue.ensure_capacity_all(opts.chunk_items * opts.num_workers + 64);

    // Retire drained head buckets while work remains elsewhere.
    const uint64_t pending = queue.total_pending();
    const uint64_t in_flight = queue.total_in_flight();
    uint32_t advances = 0;
    while (pending + in_flight > 0 && advances + 1 < opts.num_buckets &&
           queue.logical_bucket(0).pending_estimate() == 0 &&
           queue.head_drained()) {
      queue.advance_window();
      ++r.window_advances;
      ++advances;
    }

    // Assign published ranges from the active buckets to idle workers.
    bool assigned_any = false;
    const uint32_t active = controller.active_buckets();
    for (uint32_t logical = 0; logical < active; ++logical) {
      Bucket& b = queue.logical_bucket(logical);
      uint32_t bound = b.scan_written_bound();
      uint32_t avail = bound - b.read_ptr();
      if (avail == 0) continue;
      for (uint32_t i = 0; i < opts.num_workers; ++i) {
        if (avail == 0) break;
        if (tracks[i].active || !flags[i].is_idle()) continue;
        const uint32_t k = std::min(avail, opts.chunk_items);
        Assignment a;
        a.phys_bucket = queue.logical_to_physical(logical);
        a.start = b.read_ptr();
        a.count = k;
        b.advance_read(b.read_ptr() + k);
        tracks[i] = {true, a};
        // Injected delivery delay: the range is accounted as handed out but
        // the worker has not seen its flag yet (a late AF write).
        fault::delay(fault::Site::kAfDeliveryDelay, opts.cancel,
                     &queue.abort_flag());
        flags[i].assign(a);
        avail -= k;
        r.work.assigned_items += k;
        assigned_any = true;
      }
    }

    // Dynamic Δ from run-time signals (off by default at host scale).
    DeltaController::Signals sig;
    sig.assigned_edges = double(queue.total_in_flight());
    sig.head_switches = r.window_advances;
    sig.work_pending = queue.total_pending() > 0;
    const uint64_t p2 = queue.total_pending();
    if (p2 > 0)
      sig.tail_share =
          double(queue.pending_of(opts.num_buckets - 1)) / double(p2);
    if (controller.update(sig)) queue.set_delta(controller.delta());

    // Termination: two consecutive clean sweeps (no pending work anywhere,
    // nothing in flight, every worker idle).
    bool all_idle = true;
    for (auto& flag : flags) all_idle &= flag.is_idle();
    bool all_drained = true;
    for (uint32_t i = 0; i < opts.num_buckets; ++i)
      all_drained &= queue.physical_bucket(i).drained();
    if (!assigned_any && all_idle && all_drained) {
      if (++clean_sweeps >= 2) break;
    } else {
      clean_sweeps = 0;
    }
    // Back off only on truly idle sweeps (no work anywhere): while items
    // are pending or in flight the manager keeps its full tick rate so
    // completion harvesting and assignment latency are unaffected. The cap
    // bounds the added termination latency.
    if (assigned_any || queue.total_pending() > 0 ||
        queue.total_in_flight() > 0)
      sweep_backoff.reset();
    else
      sweep_backoff.pause();
  }

  shutdown.join_workers(false);  // clean exit: no abort, idempotent join

  for (const auto& ctx : contexts) r.work.merge(ctx.stats);
  for (VertexId v = 0; v < g.num_vertices(); ++v) r.dist[v] = dist.load(v);
  for (const auto& [sw, d] : controller.history())
    r.delta_history.emplace_back(double(sw), d);
  r.wall_ms = timer.elapsed_ms();
  r.time_us = r.wall_ms * 1e3;  // the host engine's time is real time
  return r;
}

template SsspResult<uint32_t> adds_host<uint32_t>(const CsrGraph<uint32_t>&,
                                                  VertexId,
                                                  const AddsHostOptions&);
template SsspResult<float> adds_host<float>(const CsrGraph<float>&, VertexId,
                                            const AddsHostOptions&);

}  // namespace adds
