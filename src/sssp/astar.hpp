// Goal-directed point-to-point shortest path (A*) — an extension beyond the
// paper for the routing use case its introduction motivates. Single-pair
// queries on road networks rarely need the full SSSP; with an admissible
// heuristic A* settles a fraction of the vertices Dijkstra would.
//
// The library ships two admissible heuristics:
//   * NullHeuristic           — degenerates to bidirectional-free Dijkstra;
//   * GridManhattanHeuristic  — for generator grid graphs (vertex id =
//     y*width + x): manhattan distance times the minimum edge weight.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdlib>
#include <functional>
#include <queue>
#include <vector>

#include "graph/csr_graph.hpp"
#include "sssp/result.hpp"

namespace adds {

/// Result of a point-to-point query.
template <WeightType W>
struct PointToPointResult {
  bool reachable = false;
  DistT<W> distance{};
  std::vector<VertexId> path;  // source..target inclusive when reachable
  WorkStats work;              // items_processed = settled vertices
};

/// Admissible heuristic concept: h(v) <= true distance from v to target.
template <typename H, typename W>
concept HeuristicFor = requires(const H& h, VertexId v) {
  { h(v) } -> std::convertible_to<DistT<W>>;
};

struct NullHeuristic {
  template <typename Dist = uint64_t>
  uint64_t operator()(VertexId) const noexcept {
    return 0;
  }
};

/// Admissible heuristic for 4-neighbour grid graphs from make_grid_road:
/// manhattan(v, target) * min_edge_weight.
class GridManhattanHeuristic {
 public:
  GridManhattanHeuristic(uint64_t width, VertexId target,
                         uint64_t min_edge_weight) noexcept
      : width_(width),
        tx_(int64_t(target % width)),
        ty_(int64_t(target / width)),
        min_w_(min_edge_weight) {}

  uint64_t operator()(VertexId v) const noexcept {
    const int64_t dx = int64_t(v % width_) - tx_;
    const int64_t dy = int64_t(v / width_) - ty_;
    return uint64_t(std::llabs(dx) + std::llabs(dy)) * min_w_;
  }

 private:
  uint64_t width_;
  int64_t tx_, ty_;
  uint64_t min_w_;
};

/// ALT heuristic (A*, Landmarks, Triangle inequality): given precomputed
/// distance rows d(L, ·) for K landmarks on a symmetric graph,
///   h(v) = max_L |d(L, v) - d(L, target)|
/// is an admissible, consistent lower bound on dist(v, target). Rows are
/// borrowed pointers into a landmark table that must outlive the search
/// (the service holds a shared_ptr to the table across the A* call).
/// Landmarks with an infinite entry at v or target contribute nothing —
/// the triangle inequality says nothing across components.
template <WeightType W>
class LandmarkHeuristic {
 public:
  LandmarkHeuristic(std::vector<const DistT<W>*> rows, VertexId target)
      : rows_(std::move(rows)) {
    to_target_.reserve(rows_.size());
    for (const auto* r : rows_) to_target_.push_back(r[target]);
  }

  DistT<W> operator()(VertexId v) const noexcept {
    DistT<W> best{0};
    for (size_t k = 0; k < rows_.size(); ++k) {
      const DistT<W> dv = rows_[k][v];
      const DistT<W> dt = to_target_[k];
      if (dv == DistTraits<W>::infinity() || dt == DistTraits<W>::infinity())
        continue;
      const DistT<W> d = dv > dt ? dv - dt : dt - dv;
      if (d > best) best = d;
    }
    return best;
  }

 private:
  std::vector<const DistT<W>*> rows_;
  std::vector<DistT<W>> to_target_;
};

/// A* from source to target with heuristic `h` (must be admissible for an
/// exact answer). The graph (or its reverse for directed inputs) is also
/// used for path reconstruction via a parent array kept during the search.
template <WeightType W, typename H>
PointToPointResult<W> astar(const CsrGraph<W>& g, VertexId source,
                            VertexId target, const H& h);

/// Dijkstra-based point-to-point (early exit at target): the baseline A*
/// is measured against.
template <WeightType W>
PointToPointResult<W> point_to_point_dijkstra(const CsrGraph<W>& g,
                                              VertexId source,
                                              VertexId target);

// A* is header-defined below (it is templated on the heuristic).

template <WeightType W, typename H>
PointToPointResult<W> astar(const CsrGraph<W>& g, VertexId source,
                            VertexId target, const H& h) {
  using Dist = DistT<W>;
  ADDS_REQUIRE(source < g.num_vertices() && target < g.num_vertices(),
               "endpoints out of range");
  PointToPointResult<W> out;

  std::vector<Dist> dist(g.num_vertices(), DistTraits<W>::infinity());
  std::vector<VertexId> parent(g.num_vertices(), kInvalidVertex);
  std::vector<bool> settled(g.num_vertices(), false);

  struct Entry {
    Dist f;  // g + h
    Dist gd;
    VertexId v;
    bool operator>(const Entry& o) const {
      if (f != o.f) return f > o.f;
      return v > o.v;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> open;

  dist[source] = Dist{0};
  open.push({Dist(h(source)), Dist{0}, source});
  ++out.work.pushes;

  while (!open.empty()) {
    const Entry top = open.top();
    open.pop();
    if (settled[top.v]) {
      ++out.work.stale_skipped;
      continue;
    }
    settled[top.v] = true;
    ++out.work.items_processed;
    if (top.v == target) break;  // admissible h => settled target is exact

    const EdgeIndex end = g.edge_end(top.v);
    for (EdgeIndex e = g.edge_begin(top.v); e < end; ++e) {
      ++out.work.relaxations;
      const VertexId w = g.edge_target(e);
      const Dist nd = dist[top.v] + Dist(g.edge_weight(e));
      if (nd < dist[w]) {
        dist[w] = nd;
        parent[w] = top.v;
        ++out.work.improvements;
        ++out.work.pushes;
        open.push({nd + Dist(h(w)), nd, w});
      }
    }
  }

  if (!settled[target]) return out;  // unreachable
  out.reachable = true;
  out.distance = dist[target];
  for (VertexId v = target; v != kInvalidVertex; v = parent[v])
    out.path.push_back(v);
  std::reverse(out.path.begin(), out.path.end());
  ADDS_ASSERT(out.path.front() == source);
  return out;
}

template <WeightType W>
PointToPointResult<W> point_to_point_dijkstra(const CsrGraph<W>& g,
                                              VertexId source,
                                              VertexId target) {
  return astar(g, source, target, NullHeuristic{});
}

}  // namespace adds
