// Warm, reusable host SSSP engine (the serving building block).
//
// adds_host() pays a fixed cost per call that has nothing to do with the
// query: it spawns num_workers threads, allocates a BlockPool slab and a
// WorkQueue, and tears all of it down again. For one-shot runs that is
// noise; for a query service answering many small queries it dominates.
// HostEngine hoists that setup into construction and keeps it warm:
//
//   * worker threads are spawned once and park on their assignment flags
//     between queries (util/event.hpp eventcount — an idle engine burns no
//     CPU);
//   * the BlockPool / WorkQueue pair is allocated lazily on first use and
//     kept; solve() rewinds it with the quiesced-only reset() hooks
//     (docs/QUEUE_PROTOCOL.md §"Reset and reuse") instead of reallocating,
//     and only rebuilds when a larger graph needs a bigger slab;
//   * per-query state (distance array, Δ controller, work counters) is
//     re-initialized per solve; WorkStats are zeroed on the persistent
//     worker contexts so no counter leaks across queries.
//
// Thread-safety: an engine serves ONE query at a time — solve() is not
// reentrant and must not be called concurrently. A pool of engines behind
// a dispatcher (src/service/sssp_service.hpp) provides concurrency.
//
// Error handling: if a solve throws (pool wedge, cancel, deadline, injected
// fault), the engine aborts the queue, waits for every worker to park idle,
// and rethrows. The engine stays usable: the next solve() resets the queue
// (which also clears the otherwise-irreversible abort flag) and runs on the
// same warm threads. This quiesce-instead-of-join discipline is what makes
// the worker pool reusable across failed queries.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr_graph.hpp"
#include "queue/lane_codec.hpp"
#include "sssp/adds.hpp"
#include "sssp/repair.hpp"

namespace adds {

/// Thrown by HostEngine::solve when QueryControl::deadline_ms elapses
/// before the run finishes. A distinct type so the service layer can map
/// it to QueryStatus::kDeadlineExpired without string-matching.
class DeadlineError : public Error {
 public:
  using Error::Error;
};

/// Heartbeat published by the manager loop while a solve runs, so an
/// external supervisor can tell a long query from a wedged one without
/// touching the engine. `pulse` bumps only on sweeps that made real
/// progress (assignments, harvests, recycles, window advances) — a manager
/// spinning over a stuck queue keeps `sweeps` ticking but freezes `pulse`,
/// which is exactly the signature a wedge detector needs. All fields are
/// relaxed atomics: they are monitoring data, not synchronization.
struct ProgressBeacon {
  /// Monotonic across queries; changes whenever a sweep progressed.
  std::atomic<uint64_t> pulse{0};
  /// Manager sweeps in the current solve (ticks even when wedged).
  std::atomic<uint64_t> sweeps{0};
  /// Head-bucket switches in the current solve.
  std::atomic<uint64_t> window_advances{0};
  /// Items handed to workers in the current solve.
  std::atomic<uint64_t> assigned_items{0};

  /// Called by the engine when a solve binds to this beacon: per-solve
  /// gauges rewind, the pulse bumps (binding itself is progress).
  void begin_solve() noexcept {
    sweeps.store(0, std::memory_order_relaxed);
    window_advances.store(0, std::memory_order_relaxed);
    assigned_items.store(0, std::memory_order_relaxed);
    pulse.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Per-query control surface. All pointees must outlive the solve() call.
struct QueryControl {
  /// External cancellation token (watchdog or caller). When it becomes
  /// true the manager aborts the queue and throws adds::Error.
  const std::atomic<bool>* cancel = nullptr;
  /// Wakeup paired with `cancel`; also used as this query's completion
  /// event so a parked manager reacts in microseconds.
  Event* cancel_event = nullptr;
  /// Wall-clock budget for this query; <= 0 means unbounded. Checked by
  /// the manager each sweep — enforcement costs no extra thread — and
  /// reported as DeadlineError.
  double deadline_ms = 0.0;
  /// Optional heartbeat sink the manager publishes progress into each
  /// sweep. Null disables publication (one branch per sweep).
  ProgressBeacon* beacon = nullptr;
  /// Fault-injection domain this query executes in (util/fault.hpp). The
  /// engine propagates it to the manager loop and every worker assignment,
  /// so a domain-restricted FaultPlan hits exactly the queries tagged with
  /// its domain. 0 (the default) matches only unrestricted plans — pure
  /// test/chaos machinery, free on production paths.
  uint64_t fault_domain = 0;
};

// ---- Batched multi-source solves -------------------------------------------

/// One query lane of a batched solve: a source plus an optional per-lane
/// cancel. A fired lane cancel DETACHES the lane — its queued items drain
/// without edge work and its outcome reports kCancelled — while every
/// other lane keeps solving; contrast QueryControl::cancel, which aborts
/// the whole batch. Pointees must outlive the solve_batch call.
struct LaneQuery {
  VertexId source = 0;
  const std::atomic<bool>* cancel = nullptr;
};

enum class LaneStatus : uint8_t {
  kOk = 0,
  kCancelled,  // the lane's cancel token fired; result is partial garbage
};

/// Per-lane outcome of a batched solve.
template <WeightType W>
struct LaneOutcome {
  LaneStatus status = LaneStatus::kOk;
  /// Full per-lane result: this lane's dist row, its certified parent
  /// tree, and this lane's slice of the shared traversal's accounting
  /// (items popped/pushed on this lane; batch-wide costs live on
  /// BatchResult::work). Meaningless when status != kOk.
  SsspResult<W> result;
  /// Wall time at which the lane's work drained (its pushed == popped
  /// settle point, observed on the manager's sweep cadence) — lanes
  /// complete independently even though extraction happens once at the
  /// end. 0 when the lane settled only at global termination.
  double settle_ms = 0.0;
};

/// Result of relaxing K sources through one traversal.
template <WeightType W>
struct BatchResult {
  std::vector<LaneOutcome<W>> lanes;
  /// Aggregate accounting of the shared traversal (every lane's work plus
  /// the shared scheduling costs — this is what the batch actually cost).
  WorkStats work;
  QueueHealth health;
  double wall_ms = 0.0;
  uint64_t window_advances = 0;
};

/// A warm adds-host solver: construction spawns the worker threads, each
/// solve() runs one query on them. Options are fixed at construction
/// (they size the worker pool and queue geometry).
template <WeightType W>
class HostEngine {
 public:
  explicit HostEngine(const AddsHostOptions& opts = {});
  ~HostEngine();

  HostEngine(const HostEngine&) = delete;
  HostEngine& operator=(const HostEngine&) = delete;

  /// Runs one SSSP query on the warm worker pool. Identical semantics and
  /// result contents to adds_host(); reuses the queue via reset() between
  /// calls. Not reentrant.
  SsspResult<W> solve(const CsrGraph<W>& g, VertexId source,
                      const QueryControl& ctl = {});

  /// Relaxes every lane's source through ONE shared traversal: one bucket
  /// structure, one manager sweep cadence, one pool — work items carry
  /// their lane in the top bits (queue/lane_codec.hpp) and distances live
  /// in a lane-major [lane * V + v] array, so K queries pay the fixed
  /// scheduling costs (window rotations, capacity management, assignment
  /// sweeps) once instead of K times. Requires 1 <= lanes.size() <=
  /// kMaxLanes and, for multi-lane batches, num_vertices <= 2^28.
  ///
  /// `ctl` governs the whole batch (its deadline/cancel fail every lane);
  /// LaneQuery::cancel detaches one lane without disturbing the rest. Not
  /// reentrant, same as solve().
  BatchResult<W> solve_batch(const CsrGraph<W>& g,
                             const std::vector<LaneQuery>& lanes,
                             const QueryControl& ctl = {});

  /// Warm-start delta repair: runs the same traversal as solve() on child
  /// graph `g`, but starts from the plan's warm labels (a parent solve with
  /// the increase-affected region invalidated — sssp/repair.hpp) and seeds
  /// only the plan's frontier, each vertex at its warm label's priority.
  /// Small deltas touch a small fraction of the graph and finish far faster
  /// than a cold solve; an empty frontier returns the warm labels directly.
  ///
  /// The result's distances are exact for `source` on `g` *provided the
  /// plan was built for this (parent, child, source) triple* — callers that
  /// cannot prove that certify with verify_repair before trusting it. The
  /// `repair.delta` fault site (fault::Site::kDeltaRepair) injects a typed
  /// failure at the seeding step; the engine quiesces and stays reusable,
  /// same as every other solve error. Not reentrant, same as solve().
  SsspResult<W> solve_repair(const CsrGraph<W>& g, VertexId source,
                             const RepairPlan<W>& plan,
                             const QueryControl& ctl = {});

  /// Asynchronously aborts whatever the engine is doing, from any thread.
  /// The running solve (if any) throws adds::Error once its manager sweep
  /// observes the abort; the engine quiesces and stays reusable — the next
  /// solve's queue reset clears the sticky abort flag. An interrupt that
  /// lands between queries is absorbed by that same reset. This is the
  /// supervisor's kill switch: unlike QueryControl::cancel (owned by the
  /// caller of solve), interrupt() needs no cooperation from the query.
  void interrupt() noexcept;

  const AddsHostOptions& options() const noexcept;
  /// Queries completed successfully since construction.
  uint64_t queries_served() const noexcept;
  /// Current slab size in blocks (0 until the first solve sizes it).
  uint32_t pool_blocks() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

extern template class HostEngine<uint32_t>;
extern template class HostEngine<float>;

/// One-shot batched entry point (throwaway engine), the batch analog of
/// adds_host(): every source becomes a lane of a single shared traversal.
template <WeightType W>
BatchResult<W> adds_host_batch(const CsrGraph<W>& g,
                               const std::vector<VertexId>& sources,
                               const AddsHostOptions& opts = {});

extern template BatchResult<uint32_t> adds_host_batch<uint32_t>(
    const CsrGraph<uint32_t>&, const std::vector<VertexId>&,
    const AddsHostOptions&);
extern template BatchResult<float> adds_host_batch<float>(
    const CsrGraph<float>&, const std::vector<VertexId>&,
    const AddsHostOptions&);

}  // namespace adds
