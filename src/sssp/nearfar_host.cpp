#include "sssp/nearfar_host.hpp"

#include <atomic>
#include <barrier>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "sssp/atomic_dist.hpp"
#include "sssp/delta_heuristic.hpp"
#include "util/timer.hpp"

namespace adds {

namespace {

/// A pre-allocated multi-writer append-only array: the GPU baseline's
/// worklist. Writers reserve slots with one fetch_add; the array is read
/// only after the superstep barrier, so no publication protocol is needed —
/// that is exactly the simplification double buffering buys (and the
/// concurrency ADDS recovers by dropping it).
template <typename T>
class BspWorklist {
 public:
  explicit BspWorklist(size_t capacity)
      : capacity_(capacity), data_(std::make_unique<T[]>(capacity)) {}

  /// Multi-writer append. Returns false on overflow (the item is dropped;
  /// the caller raises a shared overflow flag and the run aborts) — a
  /// worker thread must never throw through the superstep barrier.
  [[nodiscard]] bool push(const T& item) noexcept {
    const size_t at = size_.fetch_add(1, std::memory_order_relaxed);
    if (at >= capacity_) return false;
    data_[at] = item;
    return true;
  }

  // Single-threaded (between barriers) operations.
  size_t size() const noexcept {
    return std::min(size_.load(std::memory_order_relaxed), capacity_);
  }
  const T& operator[](size_t i) const noexcept { return data_[i]; }
  T& operator[](size_t i) noexcept { return data_[i]; }
  void clear() noexcept { size_.store(0, std::memory_order_relaxed); }
  void set_size(size_t n) noexcept {
    size_.store(n, std::memory_order_relaxed);
  }

  /// Buffer swap at a superstep boundary (single-threaded there).
  friend void swap(BspWorklist& a, BspWorklist& b) noexcept {
    std::swap(a.capacity_, b.capacity_);
    std::swap(a.data_, b.data_);
    const size_t sa = a.size_.load(std::memory_order_relaxed);
    a.size_.store(b.size_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    b.size_.store(sa, std::memory_order_relaxed);
  }

 private:
  size_t capacity_;
  std::unique_ptr<T[]> data_;
  std::atomic<size_t> size_{0};
};

}  // namespace

template <WeightType W>
SsspResult<W> near_far_host(const CsrGraph<W>& g, VertexId source,
                            const NearFarHostOptions& opts) {
  using Dist = DistT<W>;
  WallTimer timer;

  SsspResult<W> r;
  r.solver = "nf-host";
  r.dist.assign(g.num_vertices(), DistTraits<W>::infinity());
  if (g.empty()) return r;
  ADDS_REQUIRE(source < g.num_vertices(), "source vertex out of range");
  ADDS_REQUIRE(opts.num_threads >= 1, "need at least one thread");

  const double delta =
      opts.delta > 0.0 ? opts.delta : static_delta(g, opts.heuristic_c);
  const size_t cap = size_t(
      std::max(64.0, opts.capacity_factor * double(g.num_vertices())));

  struct Item {
    VertexId vertex;
    Dist dist_at_push;
  };
  BspWorklist<Item> near(cap), near_next(cap), far(cap), far_keep(cap);
  AtomicDistArray<Dist> dist(g.num_vertices(), DistTraits<W>::infinity());
  dist.store(source, Dist{0});
  ADDS_REQUIRE(near.push({source, Dist{0}}), "worklist capacity < 1");

  std::atomic<double> threshold{delta};
  std::atomic<uint64_t> processed_total{0}, relax_total{0}, stale_total{0},
      push_total{0}, improve_total{0};
  std::atomic<bool> done{false};
  std::atomic<bool> overflow{false};
  std::atomic<uint64_t> supersteps{0};

  const uint32_t T = opts.num_threads;
  // Completion function runs on exactly one thread per barrier phase: it is
  // the BSP "host side" — buffer swap, far split, termination detection.
  auto on_phase_complete = [&]() noexcept {
    supersteps.fetch_add(1, std::memory_order_relaxed);
    if (overflow.load(std::memory_order_relaxed)) {
      done.store(true, std::memory_order_relaxed);
      return;
    }
    if (near_next.size() > 0) {
      // Swap buffers: next superstep reads what this one wrote.
      swap(near, near_next);
      near_next.clear();
      return;
    }
    // Near is exhausted: split the Far pile against an advanced threshold.
    while (true) {
      Dist min_far = DistTraits<W>::infinity();
      size_t keep = 0;
      for (size_t i = 0; i < far.size(); ++i) {
        const Item it = far[i];
        const Dist cur = dist.load(it.vertex);
        if (it.dist_at_push > cur) continue;  // stale
        far_keep[keep++] = {it.vertex, cur};
        if (cur < min_far) min_far = cur;
      }
      far_keep.set_size(keep);
      swap(far, far_keep);
      far_keep.clear();
      if (far.size() == 0) {
        done.store(true, std::memory_order_relaxed);
        return;
      }
      const double th =
          (std::floor(double(min_far) / delta) + 1.0) * delta;
      threshold.store(th, std::memory_order_relaxed);
      size_t n = 0, f = 0;
      for (size_t i = 0; i < far.size(); ++i) {
        const Item it = far[i];
        if (double(it.dist_at_push) < th)
          near_next[n++] = it;
        else
          far_keep[f++] = it;
      }
      near_next.set_size(n);
      far_keep.set_size(f);
      swap(far, far_keep);
      far_keep.clear();
      if (n > 0) {
        swap(near, near_next);
        near_next.clear();
        return;
      }
      // All far items stale-compressed into emptiness: loop and re-split.
    }
  };
  std::barrier barrier(std::ptrdiff_t(T), on_phase_complete);

  auto worker = [&](uint32_t tid) {
    WorkStats local;
    while (true) {
      if (done.load(std::memory_order_relaxed)) break;
      // Static partition of the Near list across threads.
      const size_t n = near.size();
      const size_t lo = n * tid / T;
      const size_t hi = n * (tid + 1) / T;
      const double th = threshold.load(std::memory_order_relaxed);
      for (size_t i = lo; i < hi; ++i) {
        const Item it = near[i];
        const Dist du = dist.load(it.vertex);
        if (it.dist_at_push > du) {
          ++local.stale_skipped;
          continue;
        }
        ++local.items_processed;
        const EdgeIndex end = g.edge_end(it.vertex);
        for (EdgeIndex e = g.edge_begin(it.vertex); e < end; ++e) {
          ++local.relaxations;
          const VertexId v = g.edge_target(e);
          const Dist nd = du + Dist(g.edge_weight(e));
          if (dist.fetch_min(v, nd)) {
            ++local.improvements;
            ++local.pushes;
            const bool ok = double(nd) < th ? near_next.push({v, nd})
                                            : far.push({v, nd});
            if (!ok) overflow.store(true, std::memory_order_relaxed);
          }
        }
      }
      barrier.arrive_and_wait();  // superstep boundary (double buffering)
    }
    processed_total.fetch_add(local.items_processed);
    relax_total.fetch_add(local.relaxations);
    stale_total.fetch_add(local.stale_skipped);
    push_total.fetch_add(local.pushes);
    improve_total.fetch_add(local.improvements);
  };

  std::vector<std::thread> threads;
  threads.reserve(T);
  for (uint32_t t = 0; t < T; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  ADDS_REQUIRE(!overflow.load(),
               "BSP worklist overflow: raise capacity_factor");

  for (VertexId v = 0; v < g.num_vertices(); ++v) r.dist[v] = dist.load(v);
  r.work.items_processed = processed_total.load();
  r.work.relaxations = relax_total.load();
  r.work.stale_skipped = stale_total.load();
  r.work.pushes = push_total.load() + 1;
  r.work.improvements = improve_total.load();
  r.supersteps = supersteps.load();
  r.wall_ms = timer.elapsed_ms();
  r.time_us = r.wall_ms * 1e3;
  return r;
}

template SsspResult<uint32_t> near_far_host<uint32_t>(
    const CsrGraph<uint32_t>&, VertexId, const NearFarHostOptions&);
template SsspResult<float> near_far_host<float>(const CsrGraph<float>&,
                                                VertexId,
                                                const NearFarHostOptions&);

}  // namespace adds
