#include "sssp/bellman_ford.hpp"

#include <algorithm>
#include <functional>
#include <queue>

#include <vector>

#include "sim/bsp_timeline.hpp"
#include "util/timer.hpp"

namespace adds {

template <WeightType W>
SsspResult<W> bellman_ford(const CsrGraph<W>& g, VertexId source,
                           const GpuCostModel& gpu,
                           const BellmanFordOptions& opts) {
  using Dist = DistT<W>;
  WallTimer timer;

  SsspResult<W> r;
  r.solver = "gun-bf";
  r.dist.assign(g.num_vertices(), DistTraits<W>::infinity());
  if (g.empty()) return r;
  ADDS_REQUIRE(source < g.num_vertices(), "source vertex out of range");

  BspTimeline timeline(gpu);
  std::vector<VertexId> frontier{source}, next;
  std::vector<bool> on_next(g.num_vertices(), false);
  r.dist[source] = Dist{0};

  while (!frontier.empty()) {
    // Superstep: relax every edge of the frontier (double buffered — new
    // work is only visible next superstep).
    uint64_t edges = 0;
    next.clear();
    for (const VertexId u : frontier) {
      ++r.work.items_processed;
      const Dist du = r.dist[u];
      const EdgeIndex end = g.edge_end(u);
      for (EdgeIndex e = g.edge_begin(u); e < end; ++e) {
        ++edges;
        const VertexId v = g.edge_target(e);
        const Dist nd = du + Dist(g.edge_weight(e));
        if (nd < r.dist[v]) {
          r.dist[v] = nd;
          ++r.work.improvements;
          if (!opts.dedup_frontier || !on_next[v]) {
            next.push_back(v);
            if (opts.dedup_frontier) on_next[v] = true;
            ++r.work.pushes;
          }
        }
      }
    }
    r.work.relaxations += edges;
    timeline.add_kernel(frontier.size(), edges);
    if (opts.dedup_frontier && !next.empty()) {
      timeline.add_scan(next.size());  // bitmap clear + compaction pass
      for (const VertexId v : next) on_next[v] = false;
    }
    frontier.swap(next);
    ++r.supersteps;
  }

  r.time_us = timeline.now_us();
  r.trace = timeline.trace();
  r.wall_ms = timer.elapsed_ms();
  return r;
}

template <WeightType W>
SsspResult<W> nv_like(const CsrGraph<W>& g, VertexId source,
                      const GpuCostModel& gpu) {
  using Dist = DistT<W>;
  WallTimer timer;

  SsspResult<W> r;
  r.solver = "nv";
  r.dist.assign(g.num_vertices(), DistTraits<W>::infinity());
  if (g.empty()) return r;
  ADDS_REQUIRE(source < g.num_vertices(), "source vertex out of range");

  BspTimeline timeline(gpu);
  r.dist[source] = Dist{0};

  // The modelled execution is dense Jacobi sweeps: every vertex scans its
  // out-edges each iteration, reading the previous iteration's distances,
  // until a fixed point. Jacobi iteration k has computed exactly the
  // distances reachable within k hops along shortest paths, so the sweep
  // count is H = max over v of the minimum hop count among v's shortest
  // paths (+1 no-change sweep). Running the sweeps literally costs
  // O(H * |E|) host time — hopeless for high-diameter graphs — so we obtain
  // the identical fixed point and H with one lexicographic
  // (distance, hops) Dijkstra and charge the model for the H+1 dense
  // kernels the library would have launched.
  std::vector<uint32_t> hops(g.num_vertices(), 0);
  {
    struct Entry {
      Dist dist;
      uint32_t hops;
      VertexId vertex;
      bool operator>(const Entry& o) const {
        if (dist != o.dist) return dist > o.dist;
        if (hops != o.hops) return hops > o.hops;
        return vertex > o.vertex;
      }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    pq.push({Dist{0}, 0, source});
    while (!pq.empty()) {
      const Entry top = pq.top();
      pq.pop();
      if (top.dist != r.dist[top.vertex] || top.hops > hops[top.vertex])
        continue;
      const EdgeIndex end = g.edge_end(top.vertex);
      for (EdgeIndex e = g.edge_begin(top.vertex); e < end; ++e) {
        const VertexId v = g.edge_target(e);
        const Dist nd = top.dist + Dist(g.edge_weight(e));
        const uint32_t nh = top.hops + 1;
        if (nd < r.dist[v] ||
            (nd == r.dist[v] && v != source && nh < hops[v])) {
          r.dist[v] = nd;
          hops[v] = nh;
          pq.push({nd, nh, v});
        }
      }
    }
  }
  uint32_t sweeps = 0;
  uint64_t reached = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.dist[v] == DistTraits<W>::infinity()) continue;
    ++reached;
    sweeps = std::max(sweeps, hops[v]);
  }
  sweeps += 1;  // final no-change sweep
  for (uint32_t i = 0; i < sweeps; ++i)
    timeline.add_kernel(g.num_vertices(), g.num_edges());
  r.supersteps = sweeps;
  r.work.items_processed = uint64_t(sweeps) * reached;
  r.work.relaxations = uint64_t(sweeps) * g.num_edges();
  r.work.improvements = reached - 1;

  r.time_us = timeline.now_us();
  r.trace = timeline.trace();
  r.wall_ms = timer.elapsed_ms();
  return r;
}

#define ADDS_INSTANTIATE(W)                                            \
  template SsspResult<W> bellman_ford<W>(const CsrGraph<W>&, VertexId, \
                                         const GpuCostModel&,          \
                                         const BellmanFordOptions&);   \
  template SsspResult<W> nv_like<W>(const CsrGraph<W>&, VertexId,      \
                                    const GpuCostModel&);

ADDS_INSTANTIATE(uint32_t)
ADDS_INSTANTIATE(float)
#undef ADDS_INSTANTIATE

}  // namespace adds
