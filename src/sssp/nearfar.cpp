#include "sssp/nearfar.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/bsp_timeline.hpp"
#include "sssp/delta_heuristic.hpp"
#include "util/timer.hpp"

namespace adds {

namespace {

template <typename Dist>
struct Item {
  VertexId vertex;
  Dist dist_at_push;
};

}  // namespace

template <WeightType W>
SsspResult<W> near_far(const CsrGraph<W>& g, VertexId source,
                       const GpuCostModel& gpu, const NearFarOptions& opts) {
  using Dist = DistT<W>;
  WallTimer timer;

  SsspResult<W> r;
  r.solver = opts.dedup_filter ? "nf" : "gun-nf";
  r.dist.assign(g.num_vertices(), DistTraits<W>::infinity());
  if (g.empty()) return r;
  ADDS_REQUIRE(source < g.num_vertices(), "source vertex out of range");

  const double delta =
      opts.delta > 0.0 ? opts.delta : static_delta(g, opts.heuristic_c);
  BspTimeline timeline(gpu);

  std::vector<Item<Dist>> near, near_next, far, far_keep;
  std::vector<bool> seen(g.num_vertices(), false);  // dedup-filter bitmap

  r.dist[source] = Dist{0};
  near.push_back({source, Dist{0}});
  ++r.work.pushes;
  double threshold = delta;

  const auto launch_extra = [&](uint64_t items) {
    // Extra pipeline launches (Gunrock-style) charged as empty kernels.
    for (double k = 1.0; k < opts.launch_multiplier; k += 1.0)
      timeline.add_kernel(items, 0);
  };

  while (!near.empty() || !far.empty()) {
    if (near.empty()) {
      // Split the Far pile: advance the threshold to the first level that
      // admits work, dropping stale entries. One streaming pass.
      Dist min_far = DistTraits<W>::infinity();
      far_keep.clear();
      for (const auto& it : far) {
        if (it.dist_at_push > r.dist[it.vertex]) {
          ++r.work.stale_skipped;
          continue;
        }
        far_keep.push_back(it);
        min_far = std::min(min_far, r.dist[it.vertex]);
      }
      far.swap(far_keep);
      timeline.add_scan(std::max<uint64_t>(far_keep.size(), 1));
      if (far.empty()) break;
      // Jump directly past empty buckets (LonestarGPU computes the minimum
      // with a reduction in the same pass).
      const double min_d = double(min_far);
      threshold =
          (std::floor(min_d / delta) + 1.0) * delta;
      near_next.clear();
      far_keep.clear();
      for (const auto& it : far) {
        if (double(r.dist[it.vertex]) < threshold)
          near_next.push_back(it);
        else
          far_keep.push_back(it);
      }
      far.swap(far_keep);
      near.swap(near_next);
      timeline.add_scan(std::max<uint64_t>(near.size() + far.size(), 1));
      continue;
    }

    // One BSP superstep over the Near list.
    uint64_t processed = 0;
    uint64_t edges = 0;
    near_next.clear();

    if (opts.dedup_filter) {
      // Filter pass: drop stale entries and duplicate vertex ids.
      size_t write = 0;
      for (const auto& it : near) {
        if (it.dist_at_push > r.dist[it.vertex]) {
          ++r.work.stale_skipped;
          continue;
        }
        if (seen[it.vertex]) {
          ++r.work.stale_skipped;
          continue;
        }
        seen[it.vertex] = true;
        near[write++] = it;
      }
      timeline.add_scan(near.size());
      near.resize(write);
      for (const auto& it : near) seen[it.vertex] = false;
    }

    for (const auto& it : near) {
      if (it.dist_at_push > r.dist[it.vertex]) {
        ++r.work.stale_skipped;
        continue;
      }
      ++processed;
      const Dist du = r.dist[it.vertex];
      const EdgeIndex end = g.edge_end(it.vertex);
      for (EdgeIndex e = g.edge_begin(it.vertex); e < end; ++e) {
        ++edges;
        const VertexId v = g.edge_target(e);
        const Dist nd = du + Dist(g.edge_weight(e));
        if (nd < r.dist[v]) {
          r.dist[v] = nd;
          ++r.work.improvements;
          ++r.work.pushes;
          if (double(nd) < threshold)
            near_next.push_back({v, nd});
          else
            far.push_back({v, nd});
        }
      }
    }
    r.work.items_processed += processed;
    r.work.relaxations += edges;
    timeline.add_kernel(std::max<uint64_t>(near.size(), 1), edges);
    launch_extra(near.size());
    near.swap(near_next);
    ++r.supersteps;
  }

  r.time_us = timeline.now_us();
  r.trace = timeline.trace();
  r.wall_ms = timer.elapsed_ms();
  return r;
}

template <WeightType W>
SsspResult<W> gunrock_near_far(const CsrGraph<W>& g, VertexId source,
                               const GpuCostModel& gpu, double delta) {
  NearFarOptions opts;
  opts.delta = delta;
  opts.dedup_filter = false;
  opts.launch_multiplier = 3.0;
  return near_far(g, source, gpu, opts);
}

#define ADDS_INSTANTIATE(W)                                              \
  template SsspResult<W> near_far<W>(const CsrGraph<W>&, VertexId,       \
                                     const GpuCostModel&,                \
                                     const NearFarOptions&);             \
  template SsspResult<W> gunrock_near_far<W>(const CsrGraph<W>&,         \
                                             VertexId,                  \
                                             const GpuCostModel&, double);

ADDS_INSTANTIATE(uint32_t)
ADDS_INSTANTIATE(float)
#undef ADDS_INSTANTIATE

}  // namespace adds
