// Shared atomic distance array with a CAS-based fetch-min.
//
// Current NVIDIA GPUs have no hardware atomicMin for floats; the paper (and
// its baselines) use Gunrock 1.0's software compare-and-swap loop. This is
// the host equivalent, used uniformly for both weight flavours so the int
// and float engines relax identically.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "graph/types.hpp"

namespace adds {

template <typename Dist>
class AtomicDistArray {
 public:
  explicit AtomicDistArray(size_t n, Dist init) : n_(n) {
    d_ = std::make_unique<std::atomic<Dist>[]>(n);
    for (size_t i = 0; i < n; ++i)
      d_[i].store(init, std::memory_order_relaxed);
  }

  size_t size() const noexcept { return n_; }

  Dist load(size_t i) const noexcept {
    return d_[i].load(std::memory_order_relaxed);
  }

  void store(size_t i, Dist v) noexcept {
    d_[i].store(v, std::memory_order_relaxed);
  }

  /// atomicMin: lowers d[i] to `v` if v is smaller. Returns true when this
  /// call strictly improved the value (the caller then re-queues vertex i).
  bool fetch_min(size_t i, Dist v) noexcept {
    Dist cur = d_[i].load(std::memory_order_relaxed);
    while (v < cur) {
      if (d_[i].compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                      std::memory_order_relaxed))
        return true;
      // cur reloaded by the failed CAS; loop re-checks v < cur.
    }
    return false;
  }

 private:
  size_t n_;
  std::unique_ptr<std::atomic<Dist>[]> d_;
};

}  // namespace adds
