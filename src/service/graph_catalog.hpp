// GraphCatalog — the multi-tenant graph registry behind SsspService.
//
// A tenant is a graph: the catalog maps graph fingerprint (graph/
// fingerprint.hpp) to a refcounted CSR snapshot and owns the residency
// policy for the set of graphs a service instance is willing to serve.
//
// Lifetime rules (the whole point of the class):
//
//   * Snapshots are shared_ptr<const CsrGraph>. publish() stores one ref;
//     every consumer — an in-flight query's Pending record, a cache entry's
//     provenance, an engine's keyed binding — holds its own. retire() and
//     eviction drop only the catalog's ref, so a snapshot is NEVER freed
//     while anything still references it; it dies when the last in-flight
//     holder lets go. ASan/TSan verify this under churn in
//     tests/graph_catalog_test.cpp.
//   * Lookups of a fingerprint that was never published (or already
//     retired/evicted) fail typed: lookup() throws CatalogError with
//     CatalogStatus::kUnknownGraph; try_lookup() returns null and counts.
//   * Residency is bounded (`max_graphs`; 0 = unbounded). publish() over
//     capacity evicts the least-recently-used UNPINNED entry; pinned
//     tenants are never evicted — if every resident is pinned the publish
//     itself fails typed (kCatalogFull) rather than silently dropping a
//     tenant someone promised to keep.
//   * An eviction hook (set_evict_hook) tells the owner which fingerprint
//     left residency so dependent state (cache entries, tenant governors,
//     engine bindings) can be torn down under the owner's own lock. The
//     hook runs synchronously under the catalog mutex and must not call
//     back into the catalog.
//
// Thread-safety: all methods are safe to call concurrently (one leaf
// mutex). SsspService additionally serializes its calls under the service
// mutex; the internal lock makes the catalog independently usable (tests,
// tools) and keeps the lock ordering service-mutex -> catalog-mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/delta.hpp"
#include "graph/fingerprint.hpp"
#include "util/error.hpp"

namespace adds {

/// Typed catalog failure. Ordered like severity is not meaningful here;
/// these are distinct conditions, not bands.
enum class CatalogStatus : uint8_t {
  kOk = 0,
  kUnknownGraph = 1,  // fingerprint not resident (never published/retired)
  kCatalogFull = 2,   // at capacity and every resident tenant is pinned
};

const char* catalog_status_name(CatalogStatus s) noexcept;

/// Thrown by GraphCatalog for typed failures (lookup of an unknown
/// fingerprint, publish into a fully-pinned catalog).
class CatalogError : public Error {
 public:
  CatalogError(CatalogStatus status, const std::string& what)
      : Error(what), status_(status) {}
  CatalogStatus status() const noexcept { return status_; }

 private:
  CatalogStatus status_;
};

/// Point-in-time view of one resident tenant (report/debug surface).
struct CatalogEntryInfo {
  uint64_t graph_fp = 0;
  bool pinned = false;
  uint64_t vertices = 0;
  uint64_t edges = 0;
  uint64_t lookups = 0;    // successful lookups of this entry
  uint64_t publishes = 0;  // times (re)published under this fingerprint
  /// Live references to the snapshot right now, catalog's own included —
  /// >1 means queries/cache/bindings still hold it. Racy by nature
  /// (shared_ptr::use_count); monitoring data, not synchronization.
  long use_count = 0;
};

struct CatalogStats {
  uint64_t publishes = 0;       // first-time publications
  uint64_t republishes = 0;     // refreshes of an already-resident fp
  uint64_t retires = 0;         // explicit retire() removals
  uint64_t evictions = 0;       // capacity-driven LRU removals
  uint64_t unknown_lookups = 0; // lookups that failed kUnknownGraph
  uint64_t pin_refusals = 0;    // publishes rejected kCatalogFull
  uint64_t deltas = 0;          // apply_delta child publications
};

/// What GraphCatalog::apply_delta hands back: both generations of the
/// tenant (the parent stays resident until the caller retires it) plus the
/// edge classification the repair planner (sssp/repair.hpp) consumes.
/// `classification.graph` is empty — the child snapshot was moved out of it
/// into `child` so the CSR exists exactly once.
template <WeightType W>
struct AppliedDelta {
  uint64_t parent_fp = 0;
  uint64_t child_fp = 0;
  std::shared_ptr<const CsrGraph<W>> parent;
  std::shared_ptr<const CsrGraph<W>> child;
  DeltaResult<W> classification;

  /// A no-op delta: the child hashed back to the parent fingerprint, so no
  /// new tenant generation exists and there is nothing to repair or retire.
  bool unchanged() const noexcept { return child_fp == parent_fp; }
};

template <WeightType W>
class GraphCatalog {
 public:
  using Snapshot = std::shared_ptr<const CsrGraph<W>>;

  /// `max_graphs` bounds residency; 0 = unbounded (no eviction ever).
  explicit GraphCatalog(size_t max_graphs = 0) : max_graphs_(max_graphs) {}

  GraphCatalog(const GraphCatalog&) = delete;
  GraphCatalog& operator=(const GraphCatalog&) = delete;

  /// Called with the fingerprint of every entry the catalog evicts for
  /// capacity. Runs under the catalog mutex — must not re-enter the
  /// catalog. Set once, before concurrent use.
  void set_evict_hook(std::function<void(uint64_t)> hook) {
    evict_hook_ = std::move(hook);
  }

  /// Makes `g` resident under its content fingerprint and returns that
  /// fingerprint. Re-publishing a resident fingerprint refreshes the
  /// snapshot and its pin (cheap: the fingerprint already matched, the
  /// content is identical). Over capacity the LRU unpinned entry is
  /// evicted first; throws CatalogError(kCatalogFull) when every resident
  /// is pinned. `fp_hint` skips the O(V+E) fingerprint walk when the
  /// caller already computed it (must match; 0 = compute here).
  uint64_t publish(Snapshot g, bool pinned = false, uint64_t fp_hint = 0);

  /// Snapshot of a resident graph, promoting it to most-recently-used.
  /// Throws CatalogError(kUnknownGraph) for a non-resident fingerprint.
  Snapshot lookup(uint64_t graph_fp);

  /// Like lookup() but returns null instead of throwing (still counts the
  /// miss in stats().unknown_lookups).
  Snapshot try_lookup(uint64_t graph_fp) noexcept;

  /// Drops the catalog's reference; in-flight holders keep theirs. Returns
  /// false when the fingerprint was not resident. Does NOT run the evict
  /// hook (the caller asked; it already knows).
  bool retire(uint64_t graph_fp) noexcept;

  /// Applies `delta` to the resident graph under `parent_fp` and publishes
  /// the resulting child snapshot PINNED under its own content
  /// fingerprint, recording the lineage edge child -> parent. The parent
  /// stays resident (and keeps its pin state): the caller owns the
  /// handover — it retires the parent only once in-flight queries and
  /// repair are done with it. Throws CatalogError(kUnknownGraph) when the
  /// parent is not resident and adds::Error for a malformed delta; a delta
  /// that hashes back to the parent fingerprint publishes nothing new
  /// (AppliedDelta::unchanged()). The O(E) patch + fingerprint run outside
  /// the catalog mutex, so concurrent lookups never stall behind a delta.
  AppliedDelta<W> apply_delta(uint64_t parent_fp, const GraphDelta<W>& delta);

  /// Lineage: the parent fingerprint `child_fp` was derived from via
  /// apply_delta, or 0 when the fingerprint has no recorded parent.
  /// Lineage edges survive retirement of either end (they describe
  /// history, not residency).
  uint64_t parent_of(uint64_t child_fp) const noexcept;

  /// Re-records a lineage edge child -> parent (the state-store restore
  /// path, which carries lineage across a process restart). Idempotent for
  /// an already-current edge; no residency requirement on either end —
  /// lineage describes history. No-op when either fingerprint is 0.
  void record_lineage(uint64_t child_fp, uint64_t parent_fp);

  /// Pins or unpins a resident tenant. Returns false when not resident.
  bool set_pinned(uint64_t graph_fp, bool pinned) noexcept;

  bool contains(uint64_t graph_fp) const noexcept;
  size_t size() const noexcept;
  size_t capacity() const noexcept { return max_graphs_; }

  /// All resident tenants, most-recently-used first.
  std::vector<CatalogEntryInfo> entries() const;
  CatalogStats stats() const;

 private:
  struct Entry {
    uint64_t fp = 0;
    Snapshot graph;
    bool pinned = false;
    uint64_t lookups = 0;
    uint64_t publishes = 0;
  };
  using EntryList = std::vector<Entry>;  // front = most recent

  // Under mu_. Linear scans throughout: residency is a handful to a few
  // dozen graphs, far below the crossover where a map + intrusive list
  // would pay for its complexity.
  typename EntryList::iterator find_locked(uint64_t fp) noexcept;
  void touch_locked(typename EntryList::iterator it);

  mutable std::mutex mu_;
  size_t max_graphs_;
  EntryList entries_;
  CatalogStats stats_;
  std::function<void(uint64_t)> evict_hook_;
  /// Lineage edges child_fp -> parent_fp (append-only; entries are pairs,
  /// scanned linearly like everything else here).
  std::vector<std::pair<uint64_t, uint64_t>> lineage_;
};

extern template class GraphCatalog<uint32_t>;
extern template class GraphCatalog<float>;

}  // namespace adds
