#include "service/graph_catalog.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

namespace adds {

const char* catalog_status_name(CatalogStatus s) noexcept {
  switch (s) {
    case CatalogStatus::kOk: return "ok";
    case CatalogStatus::kUnknownGraph: return "unknown-graph";
    case CatalogStatus::kCatalogFull: return "catalog-full";
  }
  return "?";
}

template <WeightType W>
typename GraphCatalog<W>::EntryList::iterator GraphCatalog<W>::find_locked(
    uint64_t fp) noexcept {
  return std::find_if(entries_.begin(), entries_.end(),
                      [fp](const Entry& e) { return e.fp == fp; });
}

template <WeightType W>
void GraphCatalog<W>::touch_locked(typename EntryList::iterator it) {
  if (it != entries_.begin()) std::rotate(entries_.begin(), it, it + 1);
}

template <WeightType W>
uint64_t GraphCatalog<W>::publish(Snapshot g, bool pinned, uint64_t fp_hint) {
  ADDS_REQUIRE(g != nullptr, "graph-catalog: null graph");
  const uint64_t fp = fp_hint != 0 ? fp_hint : graph_fingerprint(*g);

  std::lock_guard<std::mutex> lk(mu_);
  auto it = find_locked(fp);
  if (it != entries_.end()) {
    // Same fingerprint = same content; refresh the snapshot (the caller's
    // copy may be a distinct allocation) and the pin, promote to MRU.
    it->graph = std::move(g);
    it->pinned = pinned;
    ++it->publishes;
    ++stats_.republishes;
    touch_locked(it);
    return fp;
  }

  if (max_graphs_ > 0 && entries_.size() >= max_graphs_) {
    // Evict the LRU unpinned resident. Pinned tenants are load-bearing
    // (someone promised them residency): if they fill the catalog the
    // publish fails typed instead of breaking that promise.
    auto victim = entries_.end();
    for (auto e = entries_.begin(); e != entries_.end(); ++e)
      if (!e->pinned) victim = e;  // last unpinned = least recently used
    if (victim == entries_.end()) {
      ++stats_.pin_refusals;
      throw CatalogError(CatalogStatus::kCatalogFull,
                         "graph-catalog: at capacity (" +
                             std::to_string(max_graphs_) +
                             ") and every resident tenant is pinned");
    }
    const uint64_t evicted_fp = victim->fp;
    entries_.erase(victim);
    ++stats_.evictions;
    if (evict_hook_) evict_hook_(evicted_fp);
  }

  Entry e;
  e.fp = fp;
  e.graph = std::move(g);
  e.pinned = pinned;
  e.publishes = 1;
  entries_.insert(entries_.begin(), std::move(e));
  ++stats_.publishes;
  return fp;
}

template <WeightType W>
typename GraphCatalog<W>::Snapshot GraphCatalog<W>::lookup(uint64_t graph_fp) {
  if (Snapshot s = try_lookup(graph_fp)) return s;
  char fp_hex[32];
  std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                (unsigned long long)graph_fp);
  throw CatalogError(CatalogStatus::kUnknownGraph,
                     std::string("graph-catalog: unknown graph fp=") + fp_hex);
}

template <WeightType W>
typename GraphCatalog<W>::Snapshot GraphCatalog<W>::try_lookup(
    uint64_t graph_fp) noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = find_locked(graph_fp);
  if (it == entries_.end()) {
    ++stats_.unknown_lookups;
    return nullptr;
  }
  ++it->lookups;
  touch_locked(it);
  return entries_.front().graph;
}

template <WeightType W>
bool GraphCatalog<W>::retire(uint64_t graph_fp) noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = find_locked(graph_fp);
  if (it == entries_.end()) return false;
  entries_.erase(it);
  ++stats_.retires;
  return true;
}

template <WeightType W>
AppliedDelta<W> GraphCatalog<W>::apply_delta(uint64_t parent_fp,
                                             const GraphDelta<W>& delta) {
  AppliedDelta<W> out;
  out.parent_fp = parent_fp;
  out.parent = lookup(parent_fp);  // throws kUnknownGraph when not resident

  // Heavy lifting outside the catalog mutex: the O(E) patch/rebuild and
  // the content fingerprint of the child.
  out.classification = adds::apply_delta(*out.parent, delta);
  auto child =
      std::make_shared<CsrGraph<W>>(std::move(out.classification.graph));
  out.classification.graph = CsrGraph<W>();
  out.child_fp = graph_fingerprint(*child);
  out.child = std::move(child);

  if (out.unchanged()) {
    // Content round-tripped (e.g. every change was a no-op): the parent IS
    // the child. Serve the resident snapshot; no lineage, no new tenant.
    out.child = out.parent;
    return out;
  }

  publish(out.child, /*pinned=*/true, out.child_fp);
  {
    std::lock_guard<std::mutex> lk(mu_);
    lineage_.emplace_back(out.child_fp, parent_fp);
    ++stats_.deltas;
  }
  return out;
}

template <WeightType W>
uint64_t GraphCatalog<W>::parent_of(uint64_t child_fp) const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = lineage_.rbegin(); it != lineage_.rend(); ++it)
    if (it->first == child_fp) return it->second;
  return 0;
}

template <WeightType W>
void GraphCatalog<W>::record_lineage(uint64_t child_fp, uint64_t parent_fp) {
  if (child_fp == 0 || parent_fp == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = lineage_.rbegin(); it != lineage_.rend(); ++it)
    if (it->first == child_fp) {
      if (it->second == parent_fp) return;  // already the current edge
      break;
    }
  lineage_.emplace_back(child_fp, parent_fp);
}

template <WeightType W>
bool GraphCatalog<W>::set_pinned(uint64_t graph_fp, bool pinned) noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = find_locked(graph_fp);
  if (it == entries_.end()) return false;
  it->pinned = pinned;
  return true;
}

template <WeightType W>
bool GraphCatalog<W>::contains(uint64_t graph_fp) const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  for (const Entry& e : entries_)
    if (e.fp == graph_fp) return true;
  return false;
}

template <WeightType W>
size_t GraphCatalog<W>::size() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

template <WeightType W>
std::vector<CatalogEntryInfo> GraphCatalog<W>::entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<CatalogEntryInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    CatalogEntryInfo info;
    info.graph_fp = e.fp;
    info.pinned = e.pinned;
    info.vertices = e.graph->num_vertices();
    info.edges = e.graph->num_edges();
    info.lookups = e.lookups;
    info.publishes = e.publishes;
    info.use_count = e.graph.use_count();
    out.push_back(info);
  }
  return out;
}

template <WeightType W>
CatalogStats GraphCatalog<W>::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

template class GraphCatalog<uint32_t>;
template class GraphCatalog<float>;

}  // namespace adds
