// Supervision vocabulary and policy for the self-healing SSSP service.
//
// Three cooperating pieces, all driven from SsspService's supervisor
// thread (service/sssp_service.cpp):
//
//   * Engine supervision. Every engine slot carries an EngineSupervision
//     board entry: the ProgressBeacon its solves publish into, a state
//     machine (kIdle -> kBusy -> kQuarantined -> kRebuilding -> back, or
//     kRetired for good), and failure bookkeeping. The wedge policy below
//     turns "busy but the pulse stopped" into a kill decision; the service
//     then cancels the stuck query via HostEngine::interrupt(), quarantines
//     the slot, and rebuilds the engine (fresh workers + pool) off the
//     serving path. Engines that fail `max_probe_failures` consecutive
//     post-rebuild probe queries are retired permanently — EngineState::
//     kRetired is the typed signal in ServiceReport::engine_status.
//
//   * Brownout degradation. HealthGovernor is a hysteresis state machine
//     kHealthy -> kBrownout -> kShedding over queue load, engine
//     availability and (optionally) p99 latency. Brownout is the
//     degrade-before-refuse band: the service serves bounded-staleness
//     cache hits, clamps deadlines and disables the expensive one-shot
//     fallback; shedding (no engines at all) rejects outright.
//
//   * Flight recorder vocabulary. FlightKind is the service's event enum
//     for util/flight_recorder.hpp, with a formatter so a dump reads as a
//     timeline, not hex.
//
// Everything here is policy + plain data; the mechanism (threads, locks,
// promises) stays in sssp_service.cpp, which keeps these transitions unit
// testable without spinning up a service.
#pragma once

#include <cstdint>
#include <string>

#include "sssp/host_engine.hpp"
#include "util/flight_recorder.hpp"

namespace adds {

/// Service-wide health band. Ordered: higher is worse.
enum class ServiceHealth : uint8_t {
  kHealthy = 0,   // full service: fresh results, fallback armed
  kBrownout = 1,  // degraded: stale serves, clamped deadlines, no fallback
  kShedding = 2,  // no engine capacity: reject every new query
};

const char* service_health_name(ServiceHealth h) noexcept;

/// Engine slot lifecycle. kRetired is terminal and typed into
/// ServiceReport — the service never routes to a retired slot again.
enum class EngineState : uint8_t {
  kIdle = 0,         // warm, waiting for a query
  kBusy = 1,         // running a query
  kQuarantined = 2,  // pulled from service, awaiting rebuild
  kRebuilding = 3,   // rebuilder owns it: fresh engine + probe query
  kRetired = 4,      // failed too many probes; permanently out
};

const char* engine_state_name(EngineState s) noexcept;

/// Why the supervisor killed a slot's running query (recorded on the slot
/// between the interrupt and the dispatcher observing the thrown abort).
enum class KillReason : uint8_t {
  kNone = 0,
  kWedge = 1,  // busy with a frozen pulse beyond wedge_ms
};

struct SupervisorConfig {
  /// Master switch. Off = PR4 behavior: no supervisor thread, no health
  /// machine, engines are never quarantined.
  bool enabled = true;
  /// Supervisor sweep cadence.
  double tick_ms = 2.0;
  /// A busy engine whose beacon pulse has not advanced for this long is
  /// declared wedged and its query killed. Must comfortably exceed the
  /// engine's own 250ms in-run wedge bound so the engine gets first try
  /// at failing fast itself.
  double wedge_ms = 500.0;
  /// Consecutive non-deadline engine errors (without a supervisor kill)
  /// that quarantine a slot — a poisoned engine that *returns* errors
  /// instead of wedging.
  uint32_t quarantine_after_errors = 2;
  /// Probe queries a rebuilt engine may fail consecutively before the slot
  /// is permanently retired.
  uint32_t max_probe_failures = 3;
  /// Deadline for each post-rebuild probe query.
  double probe_deadline_ms = 1000.0;
  /// Queue load (depth / max_depth) at which brownout engages, and the
  /// lower watermark it must drain to before recovery (hysteresis).
  double brownout_enter_load = 0.75;
  double brownout_exit_load = 0.50;
  /// p99 latency that engages brownout; 0 disables the latency signal.
  double brownout_p99_ms = 0.0;
  /// In brownout, per-query deadlines are clamped to at most this budget;
  /// 0 disables clamping.
  double brownout_deadline_clamp_ms = 0.0;
  /// After set_graph, entries of the *previous* fingerprint stay servable
  /// to brownout-mode queries for this long; 0 keeps the PR4 behavior
  /// (invalidate everything immediately).
  double stale_serve_ms = 0.0;
  /// Flight-recorder ring capacity (events).
  size_t flight_recorder_events = 4096;
};

/// Inputs to one HealthGovernor::update() decision.
struct HealthSignals {
  double load = 0.0;  // waiting / max_queue_depth
  uint32_t engines_available = 0;  // kIdle + kBusy
  uint32_t engines_in_fleet = 0;   // all non-retired slots
  double p99_ms = 0.0;             // recent completed-query p99
};

/// The kHealthy -> kBrownout -> kShedding state machine. Pure policy: no
/// threads, no clock — feed it signals, read the band.
///
///            load >= enter  OR  engine down  OR  p99 over
///   kHealthy ────────────────────────────────────────────▶ kBrownout
///            ◀────────────────────────────────────────────
///            load <= exit  AND  full fleet  AND  p99 ok
///
///            available == 0                 available > 0
///   (any) ────────────────▶ kShedding ────────────────────▶ kBrownout
///
/// Shedding always re-enters through brownout: capacity just came back
/// from zero, the backlog drains before the service claims healthy.
class HealthGovernor {
 public:
  explicit HealthGovernor(const SupervisorConfig& cfg) : cfg_(cfg) {}

  ServiceHealth state() const noexcept { return state_; }
  uint64_t transitions() const noexcept { return transitions_; }

  /// Applies one signal snapshot; returns true when the band changed.
  bool update(const HealthSignals& s) noexcept;

 private:
  SupervisorConfig cfg_;
  ServiceHealth state_ = ServiceHealth::kHealthy;
  uint64_t transitions_ = 0;
};

/// Per-engine supervision board entry. Owned by the service, mutated under
/// its mutex except for `beacon`, which the engine's manager thread writes
/// lock-free while a solve runs.
struct EngineSupervision {
  ProgressBeacon beacon;
  EngineState state = EngineState::kIdle;
  KillReason kill_reason = KillReason::kNone;
  uint64_t active_query = 0;   // query id while kBusy
  double busy_since_ms = 0.0;  // uptime timestamp of the dispatch
  double last_pulse_ms = 0.0;  // uptime timestamp of the last pulse change
  uint64_t pulse_seen = 0;     // beacon.pulse value behind last_pulse_ms
  uint32_t consecutive_errors = 0;
  uint32_t probe_failures = 0;
  uint64_t queries = 0;      // queries dispatched to this slot
  uint64_t kills = 0;        // supervisor interrupts delivered
  uint64_t quarantines = 0;  // times pulled from service
  uint64_t rebuilds = 0;     // engine reconstructions completed
};

/// Wedge policy, factored out of the supervisor thread so it is testable
/// with a hand-rolled beacon. Reads the slot's beacon, refreshes the
/// pulse bookkeeping, and returns true when a kBusy slot has gone
/// `wedge_ms` with no pulse. Call only on busy slots.
bool beacon_wedged(EngineSupervision& slot, double now_ms,
                   double wedge_ms) noexcept;

// ---------------------------------------------------------------------------
// Flight-recorder vocabulary
// ---------------------------------------------------------------------------

/// Service event kinds for FlightEvent::kind. Payload conventions:
/// `engine` = slot index (kNoEngine for service-wide events), `b` = query
/// id or graph fingerprint, `a`/`c` = per-kind small payloads documented
/// at each enumerator.
enum class FlightKind : uint16_t {
  kQueryAdmit = 1,      // a=source, b=query id
  kQueryCacheHit = 2,   // a=source, b=query id, c=1 when dequeue-time twin
  kQueryStaleHit = 3,   // a=source, b=query id (brownout stale serve)
  kQueryShed = 4,       // a=source, b=query id (admission or drain shed)
  kQueryDone = 5,       // a=source, b=query id, c=latency us
  kQueryFailed = 6,     // a=source, b=query id
  kQueryDeadline = 7,   // a=source, b=query id
  kQueryCancelled = 8,  // a=source, b=query id
  kEngineWedged = 9,       // a=pulse-age ms, b=query id
  kEngineQuarantined = 10, // a=consecutive errors, b=query id
  kEngineRebuilt = 11,     // a=rebuild count
  kEngineRecovered = 12,   // a=probe failures cleared
  kEngineProbeFailed = 13, // a=probe failure count
  kEngineRetired = 14,     // a=probe failure count (terminal)
  kHealthTransition = 15,  // a=(from<<8)|to, c=available engines
  kGraphSwap = 16,         // b=new fingerprint, c=stale window ms
  kStaleWindowExpired = 17,  // b=purged fingerprint, a=entries dropped
  kFaultObserved = 18,     // a=fault fires seen during the query, b=query id
  kShutdownDrain = 19,     // a=queries swept to kShutdown at teardown
};

const char* flight_kind_name(FlightKind k) noexcept;

/// Renders one dumped event as a single human-readable line (no trailing
/// newline): "#42 +12.345ms engine 1 engine-wedged q=17 ...".
std::string format_flight_event(const StampedFlightEvent& e);

}  // namespace adds
