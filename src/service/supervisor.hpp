// Supervision vocabulary and policy for the self-healing SSSP service.
//
// Three cooperating pieces, all driven from SsspService's supervisor
// thread (service/sssp_service.cpp):
//
//   * Engine supervision. Every engine slot carries an EngineSupervision
//     board entry: the ProgressBeacon its solves publish into, a state
//     machine (kIdle -> kBusy -> kQuarantined -> kRebuilding -> back, or
//     kRetired for good), and failure bookkeeping. The wedge policy below
//     turns "busy but the pulse stopped" into a kill decision; the service
//     then cancels the stuck query via HostEngine::interrupt(), quarantines
//     the slot, and rebuilds the engine (fresh workers + pool) off the
//     serving path. Engines that fail `max_probe_failures` consecutive
//     post-rebuild probe queries are retired permanently — EngineState::
//     kRetired is the typed signal in ServiceReport::engine_status.
//
//   * Brownout degradation. HealthGovernor is a hysteresis state machine
//     kHealthy -> kBrownout -> kShedding over queue load, engine
//     availability and (optionally) p99 latency. Brownout is the
//     degrade-before-refuse band: the service serves bounded-staleness
//     cache hits, clamps deadlines and disables the expensive one-shot
//     fallback; shedding (no engines at all) rejects outright.
//
//   * Flight recorder vocabulary. FlightKind is the service's event enum
//     for util/flight_recorder.hpp, with a formatter so a dump reads as a
//     timeline, not hex.
//
// Everything here is policy + plain data; the mechanism (threads, locks,
// promises) stays in sssp_service.cpp, which keeps these transitions unit
// testable without spinning up a service.
#pragma once

#include <cstdint>
#include <string>

#include "sssp/host_engine.hpp"
#include "util/flight_recorder.hpp"

namespace adds {

/// Service-wide health band. Ordered: higher is worse.
enum class ServiceHealth : uint8_t {
  kHealthy = 0,   // full service: fresh results, fallback armed
  kBrownout = 1,  // degraded: stale serves, clamped deadlines, no fallback
  kShedding = 2,  // no engine capacity: reject every new query
};

const char* service_health_name(ServiceHealth h) noexcept;

/// Engine slot lifecycle. kRetired is terminal and typed into
/// ServiceReport — the service never routes to a retired slot again.
enum class EngineState : uint8_t {
  kIdle = 0,         // warm, waiting for a query
  kBusy = 1,         // running a query
  kQuarantined = 2,  // pulled from service, awaiting rebuild
  kRebuilding = 3,   // rebuilder owns it: fresh engine + probe query
  kRetired = 4,      // failed too many probes; permanently out
};

const char* engine_state_name(EngineState s) noexcept;

/// Why the supervisor killed a slot's running query (recorded on the slot
/// between the interrupt and the dispatcher observing the thrown abort).
enum class KillReason : uint8_t {
  kNone = 0,
  kWedge = 1,  // busy with a frozen pulse beyond wedge_ms
};

/// Per-tenant circuit-breaker state (classic three-state machine).
enum class BreakerState : uint8_t {
  kClosed = 0,    // tenant serving normally
  kOpen = 1,      // tenant quarantined: submits rejected kTenantQuarantined
  kHalfOpen = 2,  // cooldown elapsed: trial queries probe the tenant
};

const char* breaker_state_name(BreakerState s) noexcept;

/// Per-tenant bulkhead knobs. Defaults are single-tenant-transparent: with
/// one graph and shares of 1.0 the service behaves exactly as before the
/// catalog existed.
struct TenantPolicy {
  /// Each tenant may occupy at most floor(queue_share * max_queue_depth)
  /// admission-queue slots (>= 1); beyond that ITS submits shed
  /// kOverloaded while other tenants keep queueing.
  double queue_share = 1.0;
  /// Each tenant may hold at most floor(engine_share * num_engines) engine
  /// slots (>= 1) — busy slots running its queries plus quarantined/
  /// rebuilding slots its queries poisoned. A wedging tenant can never
  /// take down more than its share of the fleet.
  double engine_share = 1.0;
  /// Circuit breaker: after `breaker_open_after` consecutive engine
  /// failures (wedge kills or errors) the tenant's breaker opens — its
  /// queued queries are swept and new submits reject typed
  /// kTenantQuarantined until `breaker_cooldown_ms` elapses, then the
  /// breaker half-opens and trial queries decide (success closes, failure
  /// reopens). 0 disables the breaker.
  uint32_t breaker_open_after = 3;
  double breaker_cooldown_ms = 250.0;
  /// Residency bound handed to the GraphCatalog (0 = unbounded).
  size_t catalog_graphs = 8;
  /// Per-fingerprint result-cache entry cap (tenant-fair eviction; 0 =
  /// uncapped, any tenant may fill the whole cache).
  size_t cache_entries_per_tenant = 0;
};

/// The kClosed -> kOpen -> kHalfOpen breaker, pure policy like
/// HealthGovernor: no threads, no clock reads — the owner feeds timestamps.
class TenantBreaker {
 public:
  TenantBreaker(uint32_t open_after, double cooldown_ms) noexcept
      : open_after_(open_after), cooldown_ms_(cooldown_ms) {}

  BreakerState state() const noexcept { return state_; }
  uint32_t consecutive_failures() const noexcept { return failures_; }
  uint64_t opens() const noexcept { return opens_; }
  bool enabled() const noexcept { return open_after_ > 0; }

  /// Admission decision for one query at `now_ms`. An open breaker whose
  /// cooldown elapsed transitions to half-open here (lazily — no timer
  /// thread) and admits the query as a trial.
  enum class Admit : uint8_t { kAllow, kTrial, kReject };
  Admit admit(double now_ms) noexcept {
    if (!enabled() || state_ == BreakerState::kClosed) return Admit::kAllow;
    if (state_ == BreakerState::kOpen) {
      if (now_ms - open_since_ms_ < cooldown_ms_) return Admit::kReject;
      state_ = BreakerState::kHalfOpen;
    }
    return Admit::kTrial;
  }

  /// One engine failure (wedge kill or error) attributed to this tenant.
  /// Returns true when this failure OPENED the breaker (the caller sweeps
  /// the tenant's backlog and records the event). A half-open trial
  /// failure reopens immediately — one bad probe is proof enough.
  bool on_failure(double now_ms) noexcept {
    ++failures_;
    if (!enabled() || state_ == BreakerState::kOpen) return false;
    if (state_ == BreakerState::kHalfOpen || failures_ >= open_after_) {
      state_ = BreakerState::kOpen;
      open_since_ms_ = now_ms;
      ++opens_;
      return true;
    }
    return false;
  }

  /// One engine success for this tenant. Returns true when it CLOSED a
  /// half-open breaker (recovery proven end to end).
  bool on_success() noexcept {
    failures_ = 0;
    if (state_ != BreakerState::kHalfOpen) return false;
    state_ = BreakerState::kClosed;
    return true;
  }

 private:
  uint32_t open_after_;
  double cooldown_ms_;
  BreakerState state_ = BreakerState::kClosed;
  uint32_t failures_ = 0;
  double open_since_ms_ = 0.0;
  uint64_t opens_ = 0;
};

struct SupervisorConfig {
  /// Master switch. Off = PR4 behavior: no supervisor thread, no health
  /// machine, engines are never quarantined.
  bool enabled = true;
  /// Supervisor sweep cadence.
  double tick_ms = 2.0;
  /// A busy engine whose beacon pulse has not advanced for this long is
  /// declared wedged and its query killed. Must comfortably exceed the
  /// engine's own 250ms in-run wedge bound so the engine gets first try
  /// at failing fast itself.
  double wedge_ms = 500.0;
  /// Consecutive non-deadline engine errors (without a supervisor kill)
  /// that quarantine a slot — a poisoned engine that *returns* errors
  /// instead of wedging.
  uint32_t quarantine_after_errors = 2;
  /// Probe queries a rebuilt engine may fail consecutively before the slot
  /// is permanently retired.
  uint32_t max_probe_failures = 3;
  /// Deadline for each post-rebuild probe query.
  double probe_deadline_ms = 1000.0;
  /// Queue load (depth / max_depth) at which brownout engages, and the
  /// lower watermark it must drain to before recovery (hysteresis).
  double brownout_enter_load = 0.75;
  double brownout_exit_load = 0.50;
  /// p99 latency that engages brownout; 0 disables the latency signal.
  double brownout_p99_ms = 0.0;
  /// In brownout, per-query deadlines are clamped to at most this budget;
  /// 0 disables clamping.
  double brownout_deadline_clamp_ms = 0.0;
  /// After set_graph, entries of the *previous* fingerprint stay servable
  /// to brownout-mode queries for this long; 0 keeps the PR4 behavior
  /// (invalidate everything immediately).
  double stale_serve_ms = 0.0;
  /// Flight-recorder ring capacity (events).
  size_t flight_recorder_events = 4096;
};

/// Inputs to one HealthGovernor::update() decision.
struct HealthSignals {
  double load = 0.0;  // waiting / max_queue_depth
  uint32_t engines_available = 0;  // kIdle + kBusy
  uint32_t engines_in_fleet = 0;   // all non-retired slots
  double p99_ms = 0.0;             // recent completed-query p99
};

/// The kHealthy -> kBrownout -> kShedding state machine. Pure policy: no
/// threads, no clock — feed it signals, read the band.
///
///            load >= enter  OR  engine down  OR  p99 over
///   kHealthy ────────────────────────────────────────────▶ kBrownout
///            ◀────────────────────────────────────────────
///            load <= exit  AND  full fleet  AND  p99 ok
///
///            available == 0                 available > 0
///   (any) ────────────────▶ kShedding ────────────────────▶ kBrownout
///
/// Shedding always re-enters through brownout: capacity just came back
/// from zero, the backlog drains before the service claims healthy.
class HealthGovernor {
 public:
  explicit HealthGovernor(const SupervisorConfig& cfg) : cfg_(cfg) {}

  ServiceHealth state() const noexcept { return state_; }
  uint64_t transitions() const noexcept { return transitions_; }

  /// Applies one signal snapshot; returns true when the band changed.
  bool update(const HealthSignals& s) noexcept;

 private:
  SupervisorConfig cfg_;
  ServiceHealth state_ = ServiceHealth::kHealthy;
  uint64_t transitions_ = 0;
};

/// Per-engine supervision board entry. Owned by the service, mutated under
/// its mutex except for `beacon`, which the engine's manager thread writes
/// lock-free while a solve runs.
struct EngineSupervision {
  ProgressBeacon beacon;
  EngineState state = EngineState::kIdle;
  KillReason kill_reason = KillReason::kNone;
  uint64_t active_query = 0;   // query id while kBusy
  double busy_since_ms = 0.0;  // uptime timestamp of the dispatch
  double last_pulse_ms = 0.0;  // uptime timestamp of the last pulse change
  uint64_t pulse_seen = 0;     // beacon.pulse value behind last_pulse_ms
  uint32_t consecutive_errors = 0;
  uint32_t probe_failures = 0;
  uint64_t queries = 0;      // queries dispatched to this slot
  uint64_t kills = 0;        // supervisor interrupts delivered
  uint64_t quarantines = 0;  // times pulled from service
  uint64_t rebuilds = 0;     // engine reconstructions completed
  // --- tenancy (all under the service mutex) -------------------------------
  /// Fingerprint of the query the slot is running (valid while kBusy);
  /// counts toward that tenant's engine occupancy.
  uint64_t active_fp = 0;
  /// Blast-radius attribution: the tenant whose query poisoned this slot,
  /// set at quarantine and cleared when the rebuilt slot returns to
  /// service. A quarantined/rebuilding slot counts as UNAVAILABLE only in
  /// the offending tenant's availability view — every other tenant still
  /// sees it as capacity coming back, so one tenant's wedge cannot brown
  /// the others out.
  uint64_t fault_fp = 0;
  /// Keyed engine binding: the tenant this warm engine last solved for.
  /// Binding is affinity metadata plus a snapshot reference (bound_graph
  /// in the service keeps the graph alive for the catalog's lifetime
  /// contract); rebinding is cheap — the next solve's WorkQueue::reset
  /// rewinds the warm queue for the new graph.
  uint64_t bound_fp = 0;
  uint64_t rebinds = 0;  // times the slot switched tenants
};

/// Wedge policy, factored out of the supervisor thread so it is testable
/// with a hand-rolled beacon. Reads the slot's beacon, refreshes the
/// pulse bookkeeping, and returns true when a kBusy slot has gone
/// `wedge_ms` with no pulse. Call only on busy slots.
bool beacon_wedged(EngineSupervision& slot, double now_ms,
                   double wedge_ms) noexcept;

// ---------------------------------------------------------------------------
// Flight-recorder vocabulary
// ---------------------------------------------------------------------------

/// Service event kinds for FlightEvent::kind. Payload conventions:
/// `engine` = slot index (kNoEngine for service-wide events), `b` = query
/// id or graph fingerprint, `a`/`c` = per-kind small payloads documented
/// at each enumerator.
enum class FlightKind : uint16_t {
  kQueryAdmit = 1,      // a=source, b=query id
  kQueryCacheHit = 2,   // a=source, b=query id, c=1 when dequeue-time twin
  kQueryStaleHit = 3,   // a=source, b=query id (brownout stale serve)
  kQueryShed = 4,       // a=source, b=query id (admission or drain shed)
  kQueryDone = 5,       // a=source, b=query id, c=latency us
  kQueryFailed = 6,     // a=source, b=query id
  kQueryDeadline = 7,   // a=source, b=query id
  kQueryCancelled = 8,  // a=source, b=query id
  kEngineWedged = 9,       // a=pulse-age ms, b=query id
  kEngineQuarantined = 10, // a=consecutive errors, b=query id
  kEngineRebuilt = 11,     // a=rebuild count
  kEngineRecovered = 12,   // a=probe failures cleared
  kEngineProbeFailed = 13, // a=probe failure count
  kEngineRetired = 14,     // a=probe failure count (terminal)
  kHealthTransition = 15,  // a=(from<<8)|to, c=available engines
  kGraphSwap = 16,         // b=new fingerprint, c=stale window ms
  kStaleWindowExpired = 17,  // b=purged fingerprint, a=entries dropped
  kFaultObserved = 18,     // a=fault fires seen during the query, b=query id
  kShutdownDrain = 19,     // a=queries swept to kShutdown at teardown
  // --- tenancy (PR6) ---------------------------------------------------
  kGraphPublished = 20,    // b=fingerprint, a=residents after, c=pinned
  kGraphRetired = 21,      // b=fingerprint, a=cache entries dropped
  kGraphEvicted = 22,      // b=fingerprint, a=cache entries dropped
  kBreakerOpen = 23,       // b=fingerprint, a=consecutive failures
  kBreakerHalfOpen = 24,   // b=fingerprint
  kBreakerClosed = 25,     // b=fingerprint
  kQueryQuarantined = 26,  // a=source, b=query id (open-breaker reject)
  kTenantShed = 27,        // a=source, b=query id (per-tenant quota shed)
  kTenantHealth = 28,      // b=fingerprint, a=(from<<8)|to
  kEngineRebound = 29,     // engine=slot, b=new bound fingerprint
  kUnknownGraph = 30,      // a=source, b=query id (non-resident fp)
  // --- live graph deltas (PR8) -----------------------------------------
  kDeltaPublished = 31,    // b=child fingerprint, a=repairs scheduled,
                           // c=classified changes (decr+incr+insert)
  kRepairStart = 32,       // b=child fingerprint, a=source
  kRepairDone = 33,        // b=child fingerprint, a=source, c=latency us
  kRepairFallback = 34,    // b=child fingerprint, a=source (cold re-solve)
  // --- landmark distance oracle (PR9) ----------------------------------
  kTableBuildStart = 35,   // b=fingerprint, a=1 when warm repair
  kTableBuilt = 36,        // b=fingerprint, a=landmarks, c=build ms
  kTableRepaired = 37,     // b=child fingerprint, a=landmarks, c=build ms
  kTableRebuildFallback = 38,  // b=child fingerprint (repair -> cold build)
  kTableBuildFailed = 39,  // b=fingerprint, a=1 when unsupported (asym)
  kOracleServe = 40,       // a=source, b=query id, c=P2pServe class
  kStateSaved = 41,        // a=graphs saved, b=bytes written, c=tables+cache
  kStateLoaded = 42,       // a=graphs restored, b=sections read, c=tables+cache
  kStateCorrupt = 43,      // a=corrupt sections, b=StoreErrorKind+1 (0 = none)
  kColdRebuild = 44,       // b=fingerprint whose artifact went cold, a=what
};

const char* flight_kind_name(FlightKind k) noexcept;

/// Renders one dumped event as a single human-readable line (no trailing
/// newline): "#42 +12.345ms engine 1 engine-wedged q=17 ...".
std::string format_flight_event(const StampedFlightEvent& e);

}  // namespace adds
