#include "service/sssp_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/solver.hpp"
#include "service/result_cache.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace adds {

const char* query_status_name(QueryStatus s) noexcept {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kOverloaded: return "overloaded";
    case QueryStatus::kDeadlineExpired: return "deadline-expired";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kFailed: return "failed";
    case QueryStatus::kShutdown: return "shutdown";
  }
  return "?";
}

// Thread model (supervisor enabled):
//
//   N dispatchers   one per engine slot; run queries while their slot is
//                   kIdle, park while it is quarantined/rebuilding, exit
//                   when it retires or the service drains.
//   1 supervisor    ticks every tick_ms: wedge detection (interrupt + mark
//                   for quarantine), health-band updates, shedding the
//                   backlog when no engine is available, closing the stale
//                   cache window.
//   1 rebuilder     owns quarantined slots: destroys the engine (joins its
//                   workers), constructs a fresh one, runs a probe query,
//                   and either returns the slot to service or retires it.
//
// All slot state transitions happen under `m`. The only cross-thread
// engine touch outside `m` is HostEngine::interrupt(), which is designed
// for exactly that, and the rebuilder's destroy/construct/probe of a slot
// it owns (state kRebuilding keeps everyone else away).
template <WeightType W>
struct SsspService<W>::Impl {
  struct Pending {
    uint64_t id = 0;
    VertexId source = 0;
    QueryOptions q;
    double deadline_ms = 0.0;  // resolved (query override or default)
    double submit_ms = 0.0;    // uptime-clock submit timestamp
    std::shared_ptr<const CsrGraph<W>> graph;  // snapshot at submit
    CacheKey key;
    bool cacheable = false;
    std::promise<QueryOutcome<W>> promise;
  };

  ServiceConfig cfg;
  const bool supervise;
  WallTimer uptime;
  uint64_t config_digest = 0;

  mutable std::mutex m;
  std::condition_variable cv;      // dispatchers park here for work
  std::condition_variable sup_cv;  // supervisor tick / shutdown wake
  std::condition_variable rb_cv;   // rebuilder parks here
  std::deque<std::unique_ptr<Pending>> waiting;
  std::deque<uint32_t> rebuild_queue;  // slot indices awaiting rebuild
  bool stopping = false;
  std::atomic<bool> stop_flag{false};  // mirrors `stopping` for probes
  std::shared_ptr<const CsrGraph<W>> graph;
  uint64_t graph_fp = 0;
  // Brownout stale window: entries of `stale_fp` stay servable until
  // `stale_deadline_ms` (uptime clock), then the supervisor purges them.
  uint64_t stale_fp = 0;
  double stale_deadline_ms = 0.0;
  ResultCache<W> cache;
  LatencyRecorder recorder;
  HealthGovernor governor;
  FlightRecorder flightrec;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_expired = 0;
  uint64_t stale_hits = 0;
  uint64_t brownout_clamped = 0;
  uint64_t probe_failures_total = 0;
  uint32_t peak_depth = 0;
  uint64_t engine_queries = 0;
  double engine_busy_ms = 0.0;
  QueueHealth last_health;

  std::vector<EngineSupervision> sup;
  std::vector<std::unique_ptr<HostEngine<W>>> engines;
  std::vector<std::thread> dispatchers;
  std::thread supervisor_thread;
  std::thread rebuilder_thread;
  std::mutex join_m;
  bool joined = false;

  explicit Impl(const ServiceConfig& c)
      : cfg(c),
        supervise(c.supervisor.enabled),
        config_digest(options_digest(c.engine)),
        cache(c.cache_entries),
        governor(c.supervisor),
        flightrec(c.supervisor.flight_recorder_events),
        sup(c.num_engines) {
    ADDS_REQUIRE(cfg.num_engines >= 1, "sssp-service: need at least one engine");
    engines.reserve(cfg.num_engines);
    dispatchers.reserve(cfg.num_engines);
    for (uint32_t i = 0; i < cfg.num_engines; ++i)
      engines.push_back(std::make_unique<HostEngine<W>>(cfg.engine));
    for (uint32_t i = 0; i < cfg.num_engines; ++i)
      dispatchers.emplace_back([this, i] { dispatch_loop(i); });
    if (supervise) {
      supervisor_thread = std::thread([this] { supervisor_loop(); });
      rebuilder_thread = std::thread([this] { rebuild_loop(); });
    }
  }

  // --- flight recorder -----------------------------------------------------

  void record(FlightKind kind, uint16_t engine_idx, uint64_t b, uint32_t a = 0,
              uint32_t c = 0) noexcept {
    FlightEvent e;
    e.t_ms = float(uptime.elapsed_ms());
    e.kind = uint16_t(kind);
    e.engine = engine_idx;
    e.a = a;
    e.c = c;
    e.b = b;
    flightrec.record(e);
  }

  void record_query(FlightKind kind, const Pending& p,
                    uint16_t engine_idx = FlightEvent::kNoEngine,
                    uint32_t c = 0) noexcept {
    record(kind, engine_idx, p.id, uint32_t(p.source), c);
  }

  /// On retirement the flight recorder *is* the postmortem: dump it to the
  /// log right there, while the interleaving that killed the engine is
  /// still in the ring.
  void dump_flight_to_log(const char* why) {
    const auto events = flightrec.dump();
    ADDS_LOG_WARN("sssp-service: flight recorder dump (%s), %zu events",
                  why, events.size());
    for (const auto& e : events)
      ADDS_LOG_WARN("  %s", format_flight_event(e).c_str());
  }

  // --- engine availability -------------------------------------------------

  uint32_t count_available() const noexcept {  // call under m
    uint32_t n = 0;
    for (const auto& s : sup)
      n += s.state == EngineState::kIdle || s.state == EngineState::kBusy;
    return n;
  }

  uint32_t count_retired() const noexcept {  // call under m
    uint32_t n = 0;
    for (const auto& s : sup) n += s.state == EngineState::kRetired;
    return n;
  }

  // --- dispatcher ----------------------------------------------------------

  /// One dispatcher per engine slot. The predicate is slot-local: a
  /// quarantined slot's dispatcher parks (its engine is being rebuilt
  /// under it) and resumes when the rebuilder returns the slot to kIdle.
  void dispatch_loop(uint32_t i) {
    for (;;) {
      std::unique_ptr<Pending> p;
      {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] {
          const EngineState st = sup[i].state;
          return st == EngineState::kRetired ||
                 (st == EngineState::kIdle && !waiting.empty()) || stopping;
        });
        const EngineState st = sup[i].state;
        if (st == EngineState::kRetired) return;
        if (st != EngineState::kIdle) {
          // Quarantined/rebuilding while stopping: the rebuilder abandons
          // in-flight rebuilds at shutdown, so there is nothing to wait
          // for — the post-join sweep fails any leftover queries.
          if (stopping) return;
          continue;
        }
        if (waiting.empty()) {
          if (stopping) return;
          continue;
        }
        p = std::move(waiting.front());
        waiting.pop_front();
        EngineSupervision& s = sup[i];
        s.state = EngineState::kBusy;
        s.kill_reason = KillReason::kNone;
        s.active_query = p->id;
        s.busy_since_ms = uptime.elapsed_ms();
        s.pulse_seen = s.beacon.pulse.load(std::memory_order_relaxed);
        s.last_pulse_ms = s.busy_since_ms;
        ++s.queries;
      }
      run_one(i, std::move(p));
      {
        std::lock_guard<std::mutex> lk(m);
        // run_one may have quarantined the slot; only a still-busy slot
        // returns to idle here.
        if (sup[i].state == EngineState::kBusy)
          sup[i].state = EngineState::kIdle;
      }
    }
  }

  void run_one(uint32_t engine_idx, std::unique_ptr<Pending> p) {
    QueryOutcome<W> out;
    out.query_id = p->id;
    out.graph_fp = p->key.graph_fp;
    const double start_ms = uptime.elapsed_ms();
    out.queue_ms = start_ms - p->submit_ms;

    const auto charge_engine = [&] {
      std::lock_guard<std::mutex> lk(m);
      engine_busy_ms += uptime.elapsed_ms() - start_ms;
      ++engine_queries;
    };
    const auto finish = [&](QueryStatus st) {
      out.status = st;
      out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
      {
        std::lock_guard<std::mutex> lk(m);
        switch (st) {
          case QueryStatus::kOk:
            ++completed;
            recorder.add(out.latency_ms);
            break;
          case QueryStatus::kFailed: ++failed; break;
          case QueryStatus::kCancelled: ++cancelled; break;
          case QueryStatus::kDeadlineExpired: ++deadline_expired; break;
          case QueryStatus::kOverloaded:
          case QueryStatus::kShutdown: break;  // not produced here
        }
      }
      switch (st) {
        case QueryStatus::kOk:
          record_query(out.cache_hit ? FlightKind::kQueryCacheHit
                                     : FlightKind::kQueryDone,
                       *p, uint16_t(engine_idx),
                       out.cache_hit ? 1 : uint32_t(out.latency_ms * 1000.0));
          break;
        case QueryStatus::kFailed:
          record_query(FlightKind::kQueryFailed, *p, uint16_t(engine_idx));
          break;
        case QueryStatus::kCancelled:
          record_query(FlightKind::kQueryCancelled, *p, uint16_t(engine_idx));
          break;
        case QueryStatus::kDeadlineExpired:
          record_query(FlightKind::kQueryDeadline, *p, uint16_t(engine_idx));
          break;
        default: break;
      }
      p->promise.set_value(std::move(out));
    };
    const auto cancelled_now = [&] {
      return p->q.cancel != nullptr &&
             p->q.cancel->load(std::memory_order_acquire);
    };

    // Conditions that already hold after the queue wait are honoured
    // without burning an engine on a result nobody wants.
    if (cancelled_now()) return finish(QueryStatus::kCancelled);
    if (p->deadline_ms > 0.0 && out.queue_ms >= p->deadline_ms)
      return finish(QueryStatus::kDeadlineExpired);

    // A twin query may have completed while this one waited in the
    // admission queue: serve it from the cache instead of burning an
    // engine on a recomputation.
    if (p->cacheable) {
      std::shared_ptr<const SsspResult<W>> v;
      {
        std::lock_guard<std::mutex> lk(m);
        v = cache.lookup(p->key, /*count_miss=*/false);
      }
      if (v) {
        out.result = std::move(v);
        out.cache_hit = true;
        return finish(QueryStatus::kOk);
      }
    }

    QueryControl ctl;
    ctl.cancel = p->q.cancel;
    ctl.deadline_ms =
        p->deadline_ms > 0.0 ? p->deadline_ms - out.queue_ms : 0.0;
    ctl.beacon = supervise ? &sup[engine_idx].beacon : nullptr;

    const auto publish_ok = [&](SsspResult<W>&& r) {
      auto sp = std::make_shared<const SsspResult<W>>(std::move(r));
      {
        std::lock_guard<std::mutex> lk(m);
        last_health = sp->health;
        if (p->cacheable) cache.insert(p->key, sp);
      }
      out.result = std::move(sp);
      finish(QueryStatus::kOk);
    };

    const uint64_t fault_fires_before = fault::total_fires();
    const auto note_faults = [&] {
      const uint64_t delta = fault::total_fires() - fault_fires_before;
      if (delta > 0)
        record_query(FlightKind::kFaultObserved, *p, uint16_t(engine_idx),
                     uint32_t(delta));
    };

    try {
      SsspResult<W> r = engines[engine_idx]->solve(*p->graph, p->source, ctl);
      charge_engine();
      note_faults();
      if (supervise) {
        std::lock_guard<std::mutex> lk(m);
        EngineSupervision& s = sup[engine_idx];
        s.consecutive_errors = 0;
        // A kill that raced a clean completion: the engine proved alive,
        // ignore the mark. The stray abort flag is cleared by the next
        // solve's queue reset.
        s.kill_reason = KillReason::kNone;
      }
      return publish_ok(std::move(r));
    } catch (const DeadlineError&) {
      charge_engine();
      note_faults();
      return finish(QueryStatus::kDeadlineExpired);
    } catch (const Error& e) {
      charge_engine();
      note_faults();
      if (cancelled_now()) return finish(QueryStatus::kCancelled);

      bool quarantined_now = false;
      ServiceHealth health_now = ServiceHealth::kHealthy;
      if (supervise) {
        std::lock_guard<std::mutex> lk(m);
        EngineSupervision& s = sup[engine_idx];
        const bool killed = s.kill_reason == KillReason::kWedge;
        if (!killed) ++s.consecutive_errors;
        s.kill_reason = KillReason::kNone;
        if (killed ||
            s.consecutive_errors >= cfg.supervisor.quarantine_after_errors) {
          s.state = EngineState::kQuarantined;
          s.consecutive_errors = 0;
          ++s.quarantines;
          record(FlightKind::kEngineQuarantined, uint16_t(engine_idx), p->id,
                 killed ? 0 : s.consecutive_errors);
          rebuild_queue.push_back(engine_idx);
          quarantined_now = true;
        }
        health_now = governor.state();
      }
      if (quarantined_now) rb_cv.notify_one();

      // Guarded fallback is a luxury of a healthy service: in brownout the
      // one-shot runtime (fresh threads, fresh pool, retries) would pile
      // load onto a service already degraded — fail typed instead.
      const bool allow_fallback =
          cfg.guarded_fallback &&
          (!supervise || health_now == ServiceHealth::kHealthy);
      if (!allow_fallback) {
        out.error = quarantined_now
                        ? std::string("engine quarantined after failure: ") +
                              e.what()
                        : e.what();
        return finish(QueryStatus::kFailed);
      }
      // The warm engine gave up (e.g. a pool wedge beyond governance, or
      // an injected fault): route the query through the guarded one-shot
      // runtime — watchdog, pool-resized retries, engine fallback chain —
      // before declaring failure.
      try {
        EngineConfig ecfg;
        ecfg.adds_host = cfg.engine;
        SsspResult<W> r = run_solver_guarded(SolverKind::kAddsHost, *p->graph,
                                             p->source, ecfg, cfg.resilience);
        return publish_ok(std::move(r));
      } catch (const Error& e2) {
        out.error =
            std::string(e.what()) + "; guarded fallback: " + e2.what();
        return finish(QueryStatus::kFailed);
      }
    }
  }

  // --- supervisor ----------------------------------------------------------

  void shed_waiting_locked(const char* why, FlightKind kind) {
    const bool is_shutdown = kind == FlightKind::kShutdownDrain;
    while (!waiting.empty()) {
      std::unique_ptr<Pending> p = std::move(waiting.front());
      waiting.pop_front();
      if (!is_shutdown) ++shed;
      QueryOutcome<W> out;
      out.status = is_shutdown ? QueryStatus::kShutdown
                               : QueryStatus::kOverloaded;
      out.query_id = p->id;
      out.graph_fp = p->key.graph_fp;
      out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
      out.error = why;
      record_query(kind, *p);
      p->promise.set_value(std::move(out));
    }
  }

  void supervisor_loop() {
    std::unique_lock<std::mutex> lk(m);
    while (!stopping) {
      const double now = uptime.elapsed_ms();

      // Wedge detection: a busy slot whose pulse froze gets its query
      // killed via the engine's own abort path. The dispatcher observes
      // the thrown abort, sees kill_reason, and quarantines the slot.
      for (uint32_t i = 0; i < sup.size(); ++i) {
        EngineSupervision& s = sup[i];
        if (s.state != EngineState::kBusy) continue;
        if (s.kill_reason != KillReason::kNone) continue;  // already shot
        if (beacon_wedged(s, now, cfg.supervisor.wedge_ms)) {
          s.kill_reason = KillReason::kWedge;
          ++s.kills;
          record(FlightKind::kEngineWedged, uint16_t(i), s.active_query,
                 uint32_t(now - std::max(s.last_pulse_ms, s.busy_since_ms)));
          // interrupt() is cheap (sticky abort + wake) and safe to call
          // under m: the engine mutex it takes is leaf-level.
          engines[i]->interrupt();
        }
      }

      // Health band.
      HealthSignals sig;
      sig.load = cfg.max_queue_depth > 0
                     ? double(waiting.size()) / double(cfg.max_queue_depth)
                     : 0.0;
      sig.engines_available = count_available();
      sig.engines_in_fleet = uint32_t(sup.size()) - count_retired();
      if (cfg.supervisor.brownout_p99_ms > 0.0)
        sig.p99_ms = recorder.summary().p99;
      const ServiceHealth before = governor.state();
      if (governor.update(sig))
        record(FlightKind::kHealthTransition, FlightEvent::kNoEngine, 0,
               (uint32_t(before) << 8) | uint32_t(governor.state()),
               sig.engines_available);

      // Shedding: with zero available engines nothing will ever drain the
      // backlog — fail it typed now instead of letting callers hang on
      // futures no dispatcher can complete.
      if (sig.engines_available == 0 && !waiting.empty())
        shed_waiting_locked("shed: no engines available",
                            FlightKind::kQueryShed);

      // Stale-window close: purge the previous graph generation once its
      // bounded staleness budget is spent.
      if (stale_fp != 0 && now >= stale_deadline_ms) {
        const size_t dropped = cache.invalidate_fp(stale_fp);
        record(FlightKind::kStaleWindowExpired, FlightEvent::kNoEngine,
               stale_fp, uint32_t(dropped));
        stale_fp = 0;
      }

      sup_cv.wait_for(lk, std::chrono::duration<double, std::milli>(
                              cfg.supervisor.tick_ms));
    }
  }

  // --- rebuilder -----------------------------------------------------------

  /// Owns quarantined slots end to end: destroy (joins the wedged engine's
  /// workers — safe, the failed solve quiesced them), rebuild, probe, and
  /// either return to service or retire. One slot at a time: rebuilds are
  /// rare and serializing them caps the memory spike of an extra
  /// pool+worker set to one.
  void rebuild_loop() {
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
      rb_cv.wait(lk, [&] { return stopping || !rebuild_queue.empty(); });
      if (stopping) return;
      const uint32_t i = rebuild_queue.front();
      rebuild_queue.pop_front();
      sup[i].state = EngineState::kRebuilding;
      auto probe_graph = graph;  // current generation, not the old query's

      lk.unlock();
      std::string probe_err;
      bool ok = true;
      try {
        engines[i].reset();  // join workers, free pool
        engines[i] = std::make_unique<HostEngine<W>>(cfg.engine);
      } catch (const Error& e) {
        ok = false;
        probe_err = std::string("rebuild failed: ") + e.what();
      }
      if (ok && probe_graph && !probe_graph->empty()) {
        QueryControl ctl;
        ctl.cancel = &stop_flag;
        ctl.deadline_ms = cfg.supervisor.probe_deadline_ms;
        ctl.beacon = &sup[i].beacon;
        try {
          engines[i]->solve(*probe_graph, VertexId{0}, ctl);
        } catch (const Error& e) {
          ok = false;
          probe_err = e.what();
        }
      }
      lk.lock();

      if (stopping) return;  // abandoned mid-rebuild; shutdown sweeps up
      EngineSupervision& s = sup[i];
      ++s.rebuilds;
      record(FlightKind::kEngineRebuilt, uint16_t(i), 0, uint32_t(s.rebuilds));
      if (ok) {
        s.probe_failures = 0;
        s.consecutive_errors = 0;
        s.state = EngineState::kIdle;
        record(FlightKind::kEngineRecovered, uint16_t(i), 0);
        cv.notify_all();  // slot is serviceable again
      } else {
        ++s.probe_failures;
        ++probe_failures_total;
        record(FlightKind::kEngineProbeFailed, uint16_t(i), 0,
               s.probe_failures);
        ADDS_LOG_WARN(
            "sssp-service: engine %u post-rebuild probe failed (%u/%u): %s",
            i, s.probe_failures, cfg.supervisor.max_probe_failures,
            probe_err.c_str());
        if (s.probe_failures >= cfg.supervisor.max_probe_failures) {
          s.state = EngineState::kRetired;
          record(FlightKind::kEngineRetired, uint16_t(i), 0,
                 s.probe_failures);
          ADDS_LOG_WARN("sssp-service: engine %u permanently retired", i);
          dump_flight_to_log("engine retired");
          cv.notify_all();  // its dispatcher exits
        } else {
          s.state = EngineState::kQuarantined;
          rebuild_queue.push_back(i);  // try again
        }
      }
    }
  }

  // --- admission -----------------------------------------------------------

  std::future<QueryOutcome<W>> submit(VertexId source, const QueryOptions& q) {
    auto p = std::make_unique<Pending>();
    p->source = source;
    p->q = q;
    std::future<QueryOutcome<W>> fut = p->promise.get_future();

    {
      std::unique_lock<std::mutex> lk(m);
      if (stopping) {
        QueryOutcome<W> out;
        out.status = QueryStatus::kShutdown;
        out.error = "service is shut down";
        p->promise.set_value(std::move(out));
        return fut;
      }
      ADDS_REQUIRE(graph != nullptr, "sssp-service: no graph set");
      ADDS_REQUIRE(source < graph->num_vertices(),
                   "sssp-service: source vertex out of range");
      p->id = ++submitted;
      p->submit_ms = uptime.elapsed_ms();
      p->graph = graph;
      p->deadline_ms =
          q.deadline_ms > 0.0 ? q.deadline_ms : cfg.default_deadline_ms;
      p->cacheable = !q.bypass_cache && cache.capacity() > 0;
      p->key = CacheKey{graph_fp, source, config_digest};

      const ServiceHealth health = supervise ? governor.state()
                                             : ServiceHealth::kHealthy;
      if (health == ServiceHealth::kBrownout) {
        // Degraded-mode deadline clamp: spend less engine time per query
        // while capacity is short.
        const double clamp = cfg.supervisor.brownout_deadline_clamp_ms;
        if (clamp > 0.0 &&
            (p->deadline_ms <= 0.0 || p->deadline_ms > clamp)) {
          p->deadline_ms = clamp;
          ++brownout_clamped;
        }
      }

      if (p->cacheable) {
        if (auto v = cache.lookup(p->key)) {
          QueryOutcome<W> out;
          out.status = QueryStatus::kOk;
          out.result = std::move(v);
          out.cache_hit = true;
          out.graph_fp = graph_fp;
          out.query_id = p->id;
          out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
          ++completed;
          recorder.add(out.latency_ms);
          record_query(FlightKind::kQueryCacheHit, *p);
          p->promise.set_value(std::move(out));
          return fut;
        }
        // Brownout bounded-staleness serve: a miss on the current
        // generation may still hit the previous one while its window is
        // open. The outcome says so (stale=true, old fingerprint).
        if (health == ServiceHealth::kBrownout && stale_fp != 0 &&
            uptime.elapsed_ms() < stale_deadline_ms) {
          const CacheKey old_key{stale_fp, source, config_digest};
          if (auto v = cache.lookup(old_key, /*count_miss=*/false)) {
            QueryOutcome<W> out;
            out.status = QueryStatus::kOk;
            out.result = std::move(v);
            out.cache_hit = true;
            out.stale = true;
            out.graph_fp = stale_fp;
            out.query_id = p->id;
            out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
            ++completed;
            ++stale_hits;
            recorder.add(out.latency_ms);
            record_query(FlightKind::kQueryStaleHit, *p);
            p->promise.set_value(std::move(out));
            return fut;
          }
        }
      }

      if (health == ServiceHealth::kShedding) {
        ++shed;
        QueryOutcome<W> out;
        out.status = QueryStatus::kOverloaded;
        out.query_id = p->id;
        out.graph_fp = graph_fp;
        out.error = "service shedding: no engines available";
        record_query(FlightKind::kQueryShed, *p);
        p->promise.set_value(std::move(out));
        return fut;
      }
      if (waiting.size() >= cfg.max_queue_depth) {
        // Graceful shedding: reject now rather than queue into an
        // unbounded backlog the deadline will kill anyway.
        ++shed;
        QueryOutcome<W> out;
        out.status = QueryStatus::kOverloaded;
        out.query_id = p->id;
        out.graph_fp = graph_fp;
        out.error = "admission queue full (max_queue_depth=" +
                    std::to_string(cfg.max_queue_depth) + ")";
        record_query(FlightKind::kQueryShed, *p);
        p->promise.set_value(std::move(out));
        return fut;
      }
      record_query(FlightKind::kQueryAdmit, *p);
      waiting.push_back(std::move(p));
      peak_depth = std::max<uint32_t>(peak_depth, uint32_t(waiting.size()));
    }
    // notify_all, not notify_one: with per-slot predicates a notify_one
    // could land on a parked quarantined slot's dispatcher, which would
    // swallow the wake without running the query.
    cv.notify_all();
    return fut;
  }

  void set_graph(std::shared_ptr<const CsrGraph<W>> g, uint64_t fp) {
    std::lock_guard<std::mutex> lk(m);
    const uint64_t old_fp = graph_fp;
    graph = std::move(g);
    graph_fp = fp;
    const double window = supervise ? cfg.supervisor.stale_serve_ms : 0.0;
    if (window > 0.0 && old_fp != 0 && old_fp != fp) {
      // Keep the outgoing generation servable (brownout only) for the
      // bounded window; at most one old generation is ever retained.
      if (stale_fp != 0 && stale_fp != fp) cache.invalidate_fp(stale_fp);
      stale_fp = old_fp;
      stale_deadline_ms = uptime.elapsed_ms() + window;
    } else {
      // Every cached entry keys on the old fingerprint: a lookup could
      // never hit again, so dropping them wholesale only trades dead
      // weight for capacity.
      cache.invalidate_all();
      stale_fp = 0;
    }
    record(FlightKind::kGraphSwap, FlightEvent::kNoEngine, fp, 0,
           uint32_t(window));
  }

  // --- teardown ------------------------------------------------------------

  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(m);
      stopping = true;
    }
    stop_flag.store(true, std::memory_order_release);
    cv.notify_all();
    sup_cv.notify_all();
    rb_cv.notify_all();
    std::lock_guard<std::mutex> jk(join_m);
    if (joined) return;
    if (supervisor_thread.joinable()) supervisor_thread.join();
    if (rebuilder_thread.joinable()) rebuilder_thread.join();
    for (auto& d : dispatchers)
      if (d.joinable()) d.join();
    // Belt-and-braces drain: anything still waiting (its slot quarantined
    // at the wrong moment, or every dispatcher exited first) gets a typed
    // kShutdown instead of a forever-pending future.
    {
      std::lock_guard<std::mutex> lk(m);
      if (!waiting.empty()) {
        const uint32_t n = uint32_t(waiting.size());
        shed_waiting_locked("service shut down while queued",
                            FlightKind::kShutdownDrain);
        record(FlightKind::kShutdownDrain, FlightEvent::kNoEngine, 0, n);
      }
    }
    joined = true;
  }

  ServiceReport report() const {
    std::lock_guard<std::mutex> lk(m);
    ServiceReport rep;
    rep.submitted = submitted;
    rep.completed = completed;
    rep.failed = failed;
    rep.shed = shed;
    rep.cancelled = cancelled;
    rep.deadline_expired = deadline_expired;
    const CacheStats& cs = cache.stats();
    rep.cache_hits = cs.hits;
    rep.cache_misses = cs.misses;
    rep.cache_evictions = cs.evictions;
    rep.cache_invalidations = cs.invalidations;
    rep.cache_entries = cache.size();
    const uint64_t looked = cs.hits + cs.misses;
    rep.cache_hit_rate = looked ? double(cs.hits) / double(looked) : 0.0;
    rep.queue_depth = uint32_t(waiting.size());
    rep.peak_queue_depth = peak_depth;
    rep.engines = uint32_t(engines.size());
    rep.engine_queries = engine_queries;
    rep.engine_busy_ms = engine_busy_ms;
    rep.uptime_ms = uptime.elapsed_ms();
    if (rep.uptime_ms > 0.0 && !engines.empty())
      rep.engine_utilization = std::min(
          1.0, engine_busy_ms / (rep.uptime_ms * double(engines.size())));
    rep.latency = recorder.summary();
    rep.last_health = last_health;
    rep.health = supervise ? governor.state() : ServiceHealth::kHealthy;
    rep.health_transitions = governor.transitions();
    rep.engines_available = count_available();
    rep.engines_retired = count_retired();
    rep.stale_hits = stale_hits;
    rep.brownout_clamped = brownout_clamped;
    rep.probe_failures = probe_failures_total;
    rep.flight_events = flightrec.recorded();
    rep.engine_status.reserve(sup.size());
    for (const auto& s : sup) {
      EngineStatus es;
      es.state = s.state;
      es.queries = s.queries;
      es.kills = s.kills;
      es.quarantines = s.quarantines;
      es.rebuilds = s.rebuilds;
      es.probe_failures = s.probe_failures;
      rep.engine_status.push_back(es);
      rep.supervisor_kills += s.kills;
      rep.quarantines += s.quarantines;
      rep.rebuilds += s.rebuilds;
    }
    return rep;
  }
};

template <WeightType W>
SsspService<W>::SsspService(const ServiceConfig& cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}

template <WeightType W>
SsspService<W>::~SsspService() {
  impl_->shutdown();
}

template <WeightType W>
void SsspService<W>::set_graph(std::shared_ptr<const CsrGraph<W>> g) {
  ADDS_REQUIRE(g != nullptr, "sssp-service: null graph");
  // The O(V + E) digest runs outside the lock; only the publish is
  // serialized.
  const uint64_t fp = graph_fingerprint(*g);
  impl_->set_graph(std::move(g), fp);
}

template <WeightType W>
void SsspService<W>::set_graph(CsrGraph<W> g) {
  set_graph(std::make_shared<const CsrGraph<W>>(std::move(g)));
}

template <WeightType W>
std::future<QueryOutcome<W>> SsspService<W>::submit(VertexId source,
                                                    const QueryOptions& q) {
  return impl_->submit(source, q);
}

template <WeightType W>
QueryOutcome<W> SsspService<W>::query(VertexId source, const QueryOptions& q) {
  QueryOutcome<W> out = submit(source, q).get();
  if (out.status != QueryStatus::kOk)
    throw ServiceError(
        out.status,
        "sssp-service: query " + std::to_string(out.query_id) + " " +
            query_status_name(out.status) +
            (out.error.empty() ? "" : (": " + out.error)));
  return out;
}

template <WeightType W>
ServiceReport SsspService<W>::report() const {
  return impl_->report();
}

template <WeightType W>
std::vector<StampedFlightEvent> SsspService<W>::flight_dump() const {
  return impl_->flightrec.dump();
}

template <WeightType W>
void SsspService<W>::shutdown() {
  impl_->shutdown();
}

template class SsspService<uint32_t>;
template class SsspService<float>;

}  // namespace adds
