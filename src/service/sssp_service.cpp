#include "service/sssp_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include <unordered_map>

#include "core/solver.hpp"
#include "persist/state_store.hpp"
#include "service/graph_catalog.hpp"
#include "service/result_cache.hpp"
#include "sssp/astar.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/repair.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace adds {

const char* query_status_name(QueryStatus s) noexcept {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kOverloaded: return "overloaded";
    case QueryStatus::kDeadlineExpired: return "deadline-expired";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kFailed: return "failed";
    case QueryStatus::kShutdown: return "shutdown";
    case QueryStatus::kUnknownGraph: return "unknown-graph";
    case QueryStatus::kTenantQuarantined: return "tenant-quarantined";
  }
  return "?";
}

// Thread model (supervisor enabled):
//
//   N dispatchers   one per engine slot; run queries while their slot is
//                   kIdle, park while it is quarantined/rebuilding, exit
//                   when it retires or the service drains.
//   1 supervisor    ticks every tick_ms: wedge detection (interrupt + mark
//                   for quarantine), health-band updates, shedding the
//                   backlog when no engine is available, closing the stale
//                   cache window.
//   1 rebuilder     owns quarantined slots: destroys the engine (joins its
//                   workers), constructs a fresh one, runs a probe query,
//                   and either returns the slot to service or retires it.
//                   Also drains the delta-repair queue (apply_delta): warm
//                   repairs run on its own dedicated engine, never on a
//                   dispatcher slot, so repair work cannot starve queries.
//                   The rebuilder runs even with the supervisor disabled
//                   (repairs need it; the slot-rebuild queue just stays
//                   empty).
//
// All slot state transitions happen under `m`. The only cross-thread
// engine touch outside `m` is HostEngine::interrupt(), which is designed
// for exactly that, and the rebuilder's destroy/construct/probe of a slot
// it owns (state kRebuilding keeps everyone else away).
template <WeightType W>
struct SsspService<W>::Impl {
  struct Pending {
    uint64_t id = 0;
    VertexId source = 0;
    QueryOptions q;
    double deadline_ms = 0.0;  // resolved (query override or default)
    double submit_ms = 0.0;    // uptime-clock submit timestamp
    std::shared_ptr<const CsrGraph<W>> graph;  // snapshot at submit
    CacheKey key;
    bool cacheable = false;
    std::promise<QueryOutcome<W>> promise;
  };

  /// Per-tenant bulkhead state, one per catalog-resident graph. Created at
  /// publish, torn down at retire/evict. All under `m`.
  struct Tenant {
    explicit Tenant(const ServiceConfig& c)
        : breaker(c.tenant.breaker_open_after, c.tenant.breaker_cooldown_ms),
          governor(c.supervisor),
          recorder(512) {}
    TenantBreaker breaker;
    HealthGovernor governor;
    LatencyRecorder recorder;  // this tenant's completions (p99 signal)
    uint32_t waiting = 0;      // queued queries of this tenant
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t shed = 0;
    uint64_t quarantined = 0;
    uint64_t stale_hits = 0;
    // Live-delta lifecycle (accumulates on the CHILD generation's tenant).
    uint64_t repairs_ok = 0;
    uint64_t repair_fallbacks = 0;
    uint64_t delta_stale_hits = 0;
    // Landmark oracle point-to-point serves, this tenant only.
    uint64_t oracle_exact_hits = 0;
    uint64_t alt_searches = 0;
    uint64_t p2p_engine_fallbacks = 0;
  };

  /// One scheduled warm repair: rebuild the cached (source, parent fp)
  /// tree into an exact (source, child fp) tree on the rebuilder thread.
  /// Snapshots and the warm result ride along so neither retirement nor
  /// cache eviction can pull them out from under the repair.
  struct RepairTask {
    uint64_t child_fp = 0;
    uint64_t parent_fp = 0;
    VertexId source = 0;
    std::shared_ptr<const CsrGraph<W>> parent;
    std::shared_ptr<const CsrGraph<W>> child;
    std::shared_ptr<const SsspResult<W>> warm;  // parent's cached tree
    std::shared_ptr<const AppliedDelta<W>> delta;  // shared classification
  };

  /// Per-child repair window: while `pending > 0` and the stale budget has
  /// not elapsed, child-fp cache misses may serve the parent's cached tree
  /// typed-stale. When the last repair settles the parent is retired.
  struct DeltaWindow {
    uint64_t parent_fp = 0;
    uint32_t pending = 0;
    double stale_until_ms = 0.0;  // uptime clock
  };

  /// One scheduled landmark-table build on the rebuilder: a cold build
  /// (warm == false) or, across a delta, a warm per-lane repair from the
  /// parent generation's table. Snapshots and the parent table ride along
  /// refcounted, so neither retirement nor registry eviction can pull
  /// them out from under the build.
  struct LandmarkTask {
    uint64_t fp = 0;
    std::shared_ptr<const CsrGraph<W>> graph;
    bool warm = false;
    uint64_t parent_fp = 0;
    std::shared_ptr<const CsrGraph<W>> parent;
    std::shared_ptr<const LandmarkTable<W>> parent_table;
    std::shared_ptr<const AppliedDelta<W>> delta;  // shared classification
  };

  ServiceConfig cfg;
  const bool supervise;
  WallTimer uptime;
  uint64_t config_digest = 0;

  mutable std::mutex m;
  std::condition_variable cv;      // dispatchers park here for work
  std::condition_variable sup_cv;  // supervisor tick / shutdown wake
  std::condition_variable rb_cv;   // rebuilder parks here
  std::deque<std::unique_ptr<Pending>> waiting;
  std::deque<uint32_t> rebuild_queue;  // slot indices awaiting rebuild
  bool stopping = false;
  std::atomic<bool> stop_flag{false};  // mirrors `stopping` for probes
  // Tenancy: the catalog owns graph residency; `default_fp` is where
  // fp-less queries route (the last set_graph). The catalog has its own
  // leaf mutex but every service-side call happens under `m`, which also
  // guards `tenants` consistency with residency.
  GraphCatalog<W> catalog;
  std::unordered_map<uint64_t, Tenant> tenants;
  uint64_t default_fp = 0;
  // Per-tenant bulkhead bounds, resolved once from TenantPolicy.
  const uint32_t tenant_queue_quota;
  const uint32_t tenant_engine_cap;
  // Brownout stale window (default tenant only): entries of `stale_fp`
  // stay servable until `stale_deadline_ms` (uptime clock), then the
  // supervisor closes the window (and purges the entries if that
  // generation is no longer catalog-resident).
  uint64_t stale_fp = 0;
  double stale_deadline_ms = 0.0;
  // Live-delta pipeline (apply_delta): tasks drain on the rebuilder
  // thread; windows are keyed by child fingerprint. The repair engine is
  // lazily built and only ever touched by the rebuilder.
  std::deque<RepairTask> repair_queue;
  std::unordered_map<uint64_t, DeltaWindow> delta_windows;
  std::unique_ptr<HostEngine<W>> repair_engine;
  uint64_t deltas_applied = 0;
  uint64_t repairs_scheduled = 0;
  uint64_t repairs_ok = 0;
  uint64_t repair_fallbacks = 0;
  uint64_t delta_stale_hits = 0;
  // Landmark oracle: ALT tables keyed by fingerprint (refcounted, LRU —
  // the registry has its own leaf mutex, safe to touch under m or not).
  // Builds and warm repairs drain on the rebuilder thread behind slot
  // rebuilds and delta repairs.
  LandmarkRegistry<W> landmarks;
  std::deque<LandmarkTask> landmark_queue;
  uint64_t landmark_builds_ok = 0;
  uint64_t landmark_repairs_ok = 0;
  uint64_t landmark_rebuild_fallbacks = 0;
  uint64_t landmark_build_failures = 0;
  uint64_t landmark_unsupported = 0;
  uint64_t oracle_exact_hits = 0;
  uint64_t alt_searches = 0;
  uint64_t p2p_engine_fallbacks = 0;
  // Persistence (save/restore through the src/persist/ state store).
  uint64_t state_saves_ok = 0;
  uint64_t state_saves_failed = 0;
  uint64_t state_restores_ok = 0;
  uint64_t state_restores_failed = 0;
  uint64_t state_corrupt_sections = 0;
  uint64_t state_cold_rebuilds = 0;
  uint64_t state_graphs_restored = 0;
  uint64_t state_tables_restored = 0;
  uint64_t state_cache_restored = 0;
  double last_restore_load_ms = 0.0;
  double last_restore_verify_ms = 0.0;
  ResultCache<W> cache;
  LatencyRecorder recorder;
  FlightRecorder flightrec;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_expired = 0;
  uint64_t unknown_graph = 0;
  uint64_t tenant_quarantined = 0;
  uint64_t stale_hits = 0;
  uint64_t brownout_clamped = 0;
  uint64_t probe_failures_total = 0;
  uint32_t peak_depth = 0;
  uint64_t engine_queries = 0;
  double engine_busy_ms = 0.0;
  uint64_t batches = 0;          // solve_batch dispatches (>= 2 lanes)
  uint64_t batched_queries = 0;  // queries served through those dispatches
  QueueHealth last_health;

  std::vector<EngineSupervision> sup;
  /// Keyed-binding snapshot refs, one per slot: the graph behind
  /// sup[i].bound_fp. An idle bound engine counts as a snapshot holder
  /// (the catalog contract), released on rebind, retire/evict and rebuild.
  std::vector<std::shared_ptr<const CsrGraph<W>>> bound_graphs;
  std::vector<std::unique_ptr<HostEngine<W>>> engines;
  std::vector<std::thread> dispatchers;
  std::thread supervisor_thread;
  std::thread rebuilder_thread;
  std::mutex join_m;
  bool joined = false;

  static uint32_t share_of(double share, uint32_t total) noexcept {
    if (share >= 1.0 || total == 0) return total;
    const double f = share > 0.0 ? share : 0.0;
    return std::max<uint32_t>(1, uint32_t(f * double(total)));
  }

  explicit Impl(const ServiceConfig& c)
      : cfg(c),
        supervise(c.supervisor.enabled),
        config_digest(options_digest(c.engine)),
        catalog(c.tenant.catalog_graphs),
        tenant_queue_quota(share_of(c.tenant.queue_share, c.max_queue_depth)),
        tenant_engine_cap(share_of(c.tenant.engine_share, c.num_engines)),
        landmarks(c.landmark.max_tables),
        cache(c.cache_entries, c.tenant.cache_entries_per_tenant),
        flightrec(c.supervisor.flight_recorder_events),
        sup(c.num_engines),
        bound_graphs(c.num_engines) {
    ADDS_REQUIRE(cfg.num_engines >= 1, "sssp-service: need at least one engine");
    // Lane arithmetic caps a batch at kMaxLanes; 0 is treated as "no
    // coalescing", same as 1.
    cfg.max_batch_lanes = std::max(1u, std::min(cfg.max_batch_lanes, kMaxLanes));
    catalog.set_evict_hook([this](uint64_t fp) { on_evicted_locked(fp); });
    engines.reserve(cfg.num_engines);
    dispatchers.reserve(cfg.num_engines);
    for (uint32_t i = 0; i < cfg.num_engines; ++i)
      engines.push_back(std::make_unique<HostEngine<W>>(cfg.engine));
    for (uint32_t i = 0; i < cfg.num_engines; ++i)
      dispatchers.emplace_back([this, i] { dispatch_loop(i); });
    if (supervise) supervisor_thread = std::thread([this] { supervisor_loop(); });
    // The rebuilder runs unconditionally: slot rebuilds only arrive with
    // the supervisor on, but delta repairs (apply_delta) need it always.
    rebuilder_thread = std::thread([this] { rebuild_loop(); });
  }

  // --- flight recorder -----------------------------------------------------

  void record(FlightKind kind, uint16_t engine_idx, uint64_t b, uint32_t a = 0,
              uint32_t c = 0) noexcept {
    FlightEvent e;
    e.t_ms = float(uptime.elapsed_ms());
    e.kind = uint16_t(kind);
    e.engine = engine_idx;
    e.a = a;
    e.c = c;
    e.b = b;
    flightrec.record(e);
  }

  void record_query(FlightKind kind, const Pending& p,
                    uint16_t engine_idx = FlightEvent::kNoEngine,
                    uint32_t c = 0) noexcept {
    record(kind, engine_idx, p.id, uint32_t(p.source), c);
  }

  /// On retirement the flight recorder *is* the postmortem: dump it to the
  /// log right there, while the interleaving that killed the engine is
  /// still in the ring.
  void dump_flight_to_log(const char* why) {
    const auto events = flightrec.dump();
    ADDS_LOG_WARN("sssp-service: flight recorder dump (%s), %zu events",
                  why, events.size());
    for (const auto& e : events)
      ADDS_LOG_WARN("  %s", format_flight_event(e).c_str());
  }

  // --- engine availability -------------------------------------------------

  uint32_t count_available() const noexcept {  // call under m
    uint32_t n = 0;
    for (const auto& s : sup)
      n += s.state == EngineState::kIdle || s.state == EngineState::kBusy;
    return n;
  }

  uint32_t count_retired() const noexcept {  // call under m
    uint32_t n = 0;
    for (const auto& s : sup) n += s.state == EngineState::kRetired;
    return n;
  }

  // --- tenancy helpers (all under m) ----------------------------------------

  Tenant* tenant_for(uint64_t fp) noexcept {
    const auto it = tenants.find(fp);
    return it != tenants.end() ? &it->second : nullptr;
  }

  /// This tenant's view of engine availability: idle/busy slots plus
  /// quarantined/rebuilding slots some OTHER tenant poisoned (from this
  /// tenant's perspective that capacity is merely in maintenance, not
  /// gone). Only the offending tenant perceives its own blast damage —
  /// the per-tenant governor feeds on this, which is what keeps tenant B
  /// kHealthy while tenant A wedges engines.
  uint32_t tenant_view_available(uint64_t fp) const noexcept {
    uint32_t n = 0;
    for (const auto& s : sup) {
      if (s.state == EngineState::kIdle || s.state == EngineState::kBusy)
        ++n;
      else if (s.state != EngineState::kRetired && s.fault_fp != 0 &&
               s.fault_fp != fp)
        ++n;
    }
    return n;
  }

  /// Engine slots a tenant currently holds: busy slots running its
  /// queries plus quarantined/rebuilding slots its queries poisoned. The
  /// bulkhead cap compares against this, so a tenant whose queries keep
  /// wedging engines runs out of *its own* share instead of serially
  /// taking down the fleet.
  uint32_t tenant_occupancy(uint64_t fp) const noexcept {
    uint32_t n = 0;
    for (const auto& s : sup) {
      if (s.state == EngineState::kBusy && s.active_fp == fp)
        ++n;
      else if ((s.state == EngineState::kQuarantined ||
                s.state == EngineState::kRebuilding) &&
               s.fault_fp == fp)
        ++n;
    }
    return n;
  }

  /// Service-wide health = the worst band across tenants. A single-tenant
  /// service degenerates to the old semantics exactly.
  ServiceHealth worst_health() const noexcept {
    ServiceHealth worst = ServiceHealth::kHealthy;
    for (const auto& [fp, t] : tenants)
      worst = std::max(worst, t.governor.state());
    return worst;
  }

  /// Sheds queued queries matching `pred` with a typed status. Returns how
  /// many were swept.
  template <typename Pred>
  uint32_t shed_matching_locked(Pred&& pred, QueryStatus status,
                                const char* why, FlightKind kind) {
    uint32_t swept = 0;
    for (auto it = waiting.begin(); it != waiting.end();) {
      if (!pred(**it)) {
        ++it;
        continue;
      }
      std::unique_ptr<Pending> p = std::move(*it);
      it = waiting.erase(it);
      ++swept;
      if (Tenant* t = tenant_for(p->key.graph_fp)) {
        if (t->waiting > 0) --t->waiting;
        if (status == QueryStatus::kOverloaded) ++t->shed;
        if (status == QueryStatus::kTenantQuarantined) ++t->quarantined;
      }
      if (status == QueryStatus::kOverloaded) ++shed;
      if (status == QueryStatus::kTenantQuarantined) ++tenant_quarantined;
      if (status == QueryStatus::kUnknownGraph) ++unknown_graph;
      QueryOutcome<W> out;
      out.status = status;
      out.query_id = p->id;
      out.graph_fp = p->key.graph_fp;
      out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
      out.error = why;
      record_query(kind, *p);
      p->promise.set_value(std::move(out));
    }
    return swept;
  }

  /// Capacity-eviction hook (runs inside catalog.publish, under m): the
  /// evicted tenant takes its cache entries, bulkhead state, queued
  /// queries and engine bindings with it.
  void on_evicted_locked(uint64_t fp) {
    const size_t dropped = cache.invalidate_fp(fp);
    drop_tenant_locked(fp);
    record(FlightKind::kGraphEvicted, FlightEvent::kNoEngine, fp,
           uint32_t(dropped));
    ADDS_LOG_WARN("sssp-service: graph %016llx evicted from catalog "
                  "(%zu cache entries dropped)",
                  (unsigned long long)fp, dropped);
  }

  /// Shared retire/evict teardown: queued queries resolve kUnknownGraph,
  /// bindings release their snapshot refs, the Tenant record goes away.
  void drop_tenant_locked(uint64_t fp) {
    shed_matching_locked(
        [fp](const Pending& p) { return p.key.graph_fp == fp; },
        QueryStatus::kUnknownGraph, "graph left the catalog while queued",
        FlightKind::kUnknownGraph);
    for (uint32_t i = 0; i < sup.size(); ++i) {
      if (sup[i].bound_fp == fp) {
        sup[i].bound_fp = 0;
        bound_graphs[i].reset();
      }
    }
    tenants.erase(fp);
    if (default_fp == fp) default_fp = 0;
    if (stale_fp == fp) stale_fp = 0;
    // Landmark lifecycle mirrors catalog residency: the table and any
    // queued build for this generation go with it. A build already
    // running on the rebuilder finishes on its refcounted snapshot and
    // discards its table at install time (catalog.contains re-check).
    landmarks.drop(fp);
    for (auto it = landmark_queue.begin(); it != landmark_queue.end();)
      it = it->fp == fp ? landmark_queue.erase(it) : ++it;
  }

  /// Projects a full SSSP tree onto the point-to-point fields of an
  /// outcome whose query carried a target but was served by the engine
  /// path (fresh solve or cached/stale full tree). The distance is read
  /// off the tree — exact by construction — and the serve is typed
  /// kEngineFallback. Call under m (bumps the fallback counters).
  void project_p2p_locked(QueryOutcome<W>& out, const Pending& p) {
    if (p.q.target == kInvalidVertex || out.result == nullptr) return;
    out.p2p_serve = P2pServe::kEngineFallback;
    const auto& dist = out.result->dist;
    if (size_t(p.q.target) < dist.size() &&
        dist[p.q.target] != DistTraits<W>::infinity()) {
      out.p2p_reachable = true;
      out.p2p_distance = dist[p.q.target];
    }
    ++p2p_engine_fallbacks;
    if (Tenant* t = tenant_for(p.key.graph_fp)) ++t->p2p_engine_fallbacks;
  }

  // --- dispatcher ----------------------------------------------------------

  /// First queued query whose tenant is under its engine cap; among the
  /// eligible, one matching this slot's keyed binding wins (no rebind, and
  /// its warm pool is already sized for that graph). FIFO otherwise.
  /// Returns waiting.end() when nothing is runnable. O(queue * engines) —
  /// both are small and bounded. Call under m.
  typename std::deque<std::unique_ptr<Pending>>::iterator pick_locked(
      uint32_t slot) noexcept {
    auto pick = waiting.end();
    for (auto it = waiting.begin(); it != waiting.end(); ++it) {
      const uint64_t fp = (*it)->key.graph_fp;
      if (tenant_occupancy(fp) >= tenant_engine_cap) continue;
      if (fp == sup[slot].bound_fp) return it;  // affinity hit
      if (pick == waiting.end()) pick = it;     // first eligible (FIFO)
    }
    return pick;
  }

  /// One dispatcher per engine slot. The predicate is slot-local: a
  /// quarantined slot's dispatcher parks (its engine is being rebuilt
  /// under it) and resumes when the rebuilder returns the slot to kIdle.
  /// A queue whose every entry belongs to capped tenants parks everyone;
  /// occupancy releases (run_one return, rebuild completion) notify.
  void dispatch_loop(uint32_t i) {
    for (;;) {
      std::unique_ptr<Pending> p;
      std::vector<std::unique_ptr<Pending>> batch;
      {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] {
          const EngineState st = sup[i].state;
          return st == EngineState::kRetired ||
                 (st == EngineState::kIdle && !waiting.empty()) || stopping;
        });
        const EngineState st = sup[i].state;
        if (st == EngineState::kRetired) return;
        if (st != EngineState::kIdle) {
          // Quarantined/rebuilding while stopping: the rebuilder abandons
          // in-flight rebuilds at shutdown, so there is nothing to wait
          // for — the post-join sweep fails any leftover queries.
          if (stopping) return;
          continue;
        }
        const auto it = pick_locked(i);
        if (it == waiting.end()) {
          if (stopping) return;
          // Everything queued belongs to tenants at their engine cap;
          // park until an occupancy release re-notifies. At shutdown the
          // post-join sweep resolves what remains.
          if (!waiting.empty())
            cv.wait_for(lk, std::chrono::milliseconds(1));
          continue;
        }
        p = std::move(*it);
        waiting.erase(it);
        EngineSupervision& s = sup[i];
        if (Tenant* t = tenant_for(p->key.graph_fp))
          if (t->waiting > 0) --t->waiting;
        // Keyed binding: rebind the warm engine to this query's tenant if
        // it last served another (the engine itself rewinds via the next
        // solve's WorkQueue::reset — this is bookkeeping plus the
        // snapshot ref that keeps the bound graph catalog-safe).
        if (s.bound_fp != p->key.graph_fp) {
          if (s.bound_fp != 0) {
            ++s.rebinds;
            record(FlightKind::kEngineRebound, uint16_t(i), p->key.graph_fp);
          }
          s.bound_fp = p->key.graph_fp;
        }
        bound_graphs[i] = p->graph;
        s.active_fp = p->key.graph_fp;
        s.state = EngineState::kBusy;
        s.kill_reason = KillReason::kNone;
        s.active_query = p->id;
        s.busy_since_ms = uptime.elapsed_ms();
        s.pulse_seen = s.beacon.pulse.load(std::memory_order_relaxed);
        s.last_pulse_ms = s.busy_since_ms;
        ++s.queries;
        // Queue coalescing: fold other waiting queries for the SAME graph
        // into this dispatch as lanes of one batched solve — K queries pay
        // the traversal's fixed scheduling costs once. A repeated source
        // shares a lane (it does not consume a new one), but TOTAL members
        // are still capped at max_batch_lanes: one dispatch may never
        // swallow a whole burst, or a single engine failure would fail
        // every query in flight while the rest of the pool sat idle — the
        // leftovers spread across the other slots instead. Tenant
        // bulkheads are preserved: all members are one tenant's traffic
        // on one slot.
        if (cfg.max_batch_lanes > 1 &&
            p->graph->num_vertices() <= kMaxLaneVertices) {
          std::vector<VertexId> lane_sources{p->source};
          for (auto wit = waiting.begin();
               wit != waiting.end() &&
               batch.size() + 1 < cfg.max_batch_lanes;) {
            if ((*wit)->key.graph_fp != p->key.graph_fp) {
              ++wit;
              continue;
            }
            const VertexId src = (*wit)->source;
            const bool shares_lane =
                std::find(lane_sources.begin(), lane_sources.end(), src) !=
                lane_sources.end();
            if (!shares_lane && lane_sources.size() >= cfg.max_batch_lanes) {
              ++wit;
              continue;
            }
            if (!shares_lane) lane_sources.push_back(src);
            if (Tenant* t = tenant_for((*wit)->key.graph_fp))
              if (t->waiting > 0) --t->waiting;
            ++s.queries;
            batch.push_back(std::move(*wit));
            wit = waiting.erase(wit);
          }
        }
      }
      if (batch.empty()) {
        run_one(i, std::move(p));
      } else {
        batch.insert(batch.begin(), std::move(p));
        run_batch(i, std::move(batch));
      }
      {
        std::lock_guard<std::mutex> lk(m);
        // run_one may have quarantined the slot; only a still-busy slot
        // returns to idle here.
        if (sup[i].state == EngineState::kBusy)
          sup[i].state = EngineState::kIdle;
      }
      // The slot released occupancy (back to idle, or quarantined with the
      // fault attributed): queries of other tenants capped a moment ago —
      // or parked sibling dispatchers — may be runnable now.
      cv.notify_all();
    }
  }

  void run_one(uint32_t engine_idx, std::unique_ptr<Pending> p) {
    QueryOutcome<W> out;
    out.query_id = p->id;
    out.graph_fp = p->key.graph_fp;
    const double start_ms = uptime.elapsed_ms();
    out.queue_ms = start_ms - p->submit_ms;

    const auto charge_engine = [&] {
      std::lock_guard<std::mutex> lk(m);
      engine_busy_ms += uptime.elapsed_ms() - start_ms;
      ++engine_queries;
    };
    const auto finish = [&](QueryStatus st) {
      out.status = st;
      out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
      {
        std::lock_guard<std::mutex> lk(m);
        Tenant* t = tenant_for(p->key.graph_fp);
        switch (st) {
          case QueryStatus::kOk:
            project_p2p_locked(out, *p);
            ++completed;
            recorder.add(out.latency_ms);
            if (t) {
              ++t->completed;
              t->recorder.add(out.latency_ms);
            }
            break;
          case QueryStatus::kFailed:
            ++failed;
            if (t) ++t->failed;
            break;
          case QueryStatus::kCancelled: ++cancelled; break;
          case QueryStatus::kDeadlineExpired: ++deadline_expired; break;
          case QueryStatus::kOverloaded:
          case QueryStatus::kShutdown:
          case QueryStatus::kUnknownGraph:
          case QueryStatus::kTenantQuarantined:
            break;  // not produced here
        }
      }
      switch (st) {
        case QueryStatus::kOk:
          record_query(out.cache_hit ? FlightKind::kQueryCacheHit
                                     : FlightKind::kQueryDone,
                       *p, uint16_t(engine_idx),
                       out.cache_hit ? 1 : uint32_t(out.latency_ms * 1000.0));
          break;
        case QueryStatus::kFailed:
          record_query(FlightKind::kQueryFailed, *p, uint16_t(engine_idx));
          break;
        case QueryStatus::kCancelled:
          record_query(FlightKind::kQueryCancelled, *p, uint16_t(engine_idx));
          break;
        case QueryStatus::kDeadlineExpired:
          record_query(FlightKind::kQueryDeadline, *p, uint16_t(engine_idx));
          break;
        default: break;
      }
      p->promise.set_value(std::move(out));
    };
    const auto cancelled_now = [&] {
      return p->q.cancel != nullptr &&
             p->q.cancel->load(std::memory_order_acquire);
    };

    // Conditions that already hold after the queue wait are honoured
    // without burning an engine on a result nobody wants.
    if (cancelled_now()) return finish(QueryStatus::kCancelled);
    if (p->deadline_ms > 0.0 && out.queue_ms >= p->deadline_ms)
      return finish(QueryStatus::kDeadlineExpired);

    // A twin query may have completed while this one waited in the
    // admission queue: serve it from the cache instead of burning an
    // engine on a recomputation.
    if (p->cacheable) {
      std::shared_ptr<const SsspResult<W>> v;
      {
        std::lock_guard<std::mutex> lk(m);
        v = cache.lookup(p->key, /*count_miss=*/false);
      }
      if (v) {
        out.result = std::move(v);
        out.cache_hit = true;
        return finish(QueryStatus::kOk);
      }
    }

    QueryControl ctl;
    ctl.cancel = p->q.cancel;
    ctl.deadline_ms =
        p->deadline_ms > 0.0 ? p->deadline_ms - out.queue_ms : 0.0;
    ctl.beacon = supervise ? &sup[engine_idx].beacon : nullptr;
    // Tenant-scoped chaos: the solve executes in this tenant's fault
    // domain, so a domain-restricted FaultPlan wedges exactly this graph's
    // queries (rebuild probes run in domain 0 and stay clean).
    ctl.fault_domain = p->key.graph_fp;

    const auto publish_ok = [&](SsspResult<W>&& r) {
      auto sp = std::make_shared<const SsspResult<W>>(std::move(r));
      {
        std::lock_guard<std::mutex> lk(m);
        last_health = sp->health;
        if (p->cacheable) cache.insert(p->key, sp);
      }
      out.result = std::move(sp);
      finish(QueryStatus::kOk);
    };

    const uint64_t fault_fires_before = fault::total_fires();
    const auto note_faults = [&] {
      const uint64_t delta = fault::total_fires() - fault_fires_before;
      if (delta > 0)
        record_query(FlightKind::kFaultObserved, *p, uint16_t(engine_idx),
                     uint32_t(delta));
    };

    try {
      SsspResult<W> r = engines[engine_idx]->solve(*p->graph, p->source, ctl);
      charge_engine();
      note_faults();
      if (supervise) {
        std::lock_guard<std::mutex> lk(m);
        EngineSupervision& s = sup[engine_idx];
        s.consecutive_errors = 0;
        // A kill that raced a clean completion: the engine proved alive,
        // ignore the mark. The stray abort flag is cleared by the next
        // solve's queue reset.
        s.kill_reason = KillReason::kNone;
        // Tenant breaker: an end-to-end engine success resets the failure
        // streak; from half-open it is the recovery proof that closes.
        if (Tenant* t = tenant_for(p->key.graph_fp))
          if (t->breaker.on_success())
            record(FlightKind::kBreakerClosed, FlightEvent::kNoEngine,
                   p->key.graph_fp);
      }
      return publish_ok(std::move(r));
    } catch (const DeadlineError&) {
      charge_engine();
      note_faults();
      return finish(QueryStatus::kDeadlineExpired);
    } catch (const Error& e) {
      charge_engine();
      note_faults();
      if (cancelled_now()) return finish(QueryStatus::kCancelled);

      bool quarantined_now = false;
      bool breaker_opened = false;
      ServiceHealth health_now = ServiceHealth::kHealthy;
      if (supervise) {
        std::lock_guard<std::mutex> lk(m);
        EngineSupervision& s = sup[engine_idx];
        const bool killed = s.kill_reason == KillReason::kWedge;
        if (!killed) ++s.consecutive_errors;
        s.kill_reason = KillReason::kNone;
        if (killed ||
            s.consecutive_errors >= cfg.supervisor.quarantine_after_errors) {
          s.state = EngineState::kQuarantined;
          s.consecutive_errors = 0;
          ++s.quarantines;
          // Blast-radius attribution: the slot is out of service because
          // THIS tenant's query poisoned it. Other tenants' availability
          // views (and so their governors) ignore this slot's outage.
          s.fault_fp = p->key.graph_fp;
          record(FlightKind::kEngineQuarantined, uint16_t(engine_idx), p->id,
                 killed ? 0 : s.consecutive_errors);
          rebuild_queue.push_back(engine_idx);
          quarantined_now = true;
        }
        // Tenant breaker: every engine failure (wedge kill or error)
        // counts against the offending tenant only.
        if (Tenant* t = tenant_for(p->key.graph_fp)) {
          if (t->breaker.on_failure(uptime.elapsed_ms())) {
            breaker_opened = true;
            record(FlightKind::kBreakerOpen, FlightEvent::kNoEngine,
                   p->key.graph_fp, t->breaker.consecutive_failures());
            // Sweep the quarantined tenant's backlog typed: those queries
            // would only feed more failures into the same graph.
            const uint64_t fp = p->key.graph_fp;
            shed_matching_locked(
                [fp](const Pending& q) { return q.key.graph_fp == fp; },
                QueryStatus::kTenantQuarantined,
                "tenant circuit breaker opened",
                FlightKind::kQueryQuarantined);
          }
          health_now = t->governor.state();
        }
      }
      if (quarantined_now) rb_cv.notify_one();
      if (breaker_opened)
        ADDS_LOG_WARN("sssp-service: tenant %016llx circuit breaker opened",
                      (unsigned long long)p->key.graph_fp);

      // Guarded fallback is a luxury of a healthy service: in brownout the
      // one-shot runtime (fresh threads, fresh pool, retries) would pile
      // load onto a service already degraded — fail typed instead.
      const bool allow_fallback =
          cfg.guarded_fallback &&
          (!supervise || health_now == ServiceHealth::kHealthy);
      if (!allow_fallback) {
        out.error = quarantined_now
                        ? std::string("engine quarantined after failure: ") +
                              e.what()
                        : e.what();
        return finish(QueryStatus::kFailed);
      }
      // The warm engine gave up (e.g. a pool wedge beyond governance, or
      // an injected fault): route the query through the guarded one-shot
      // runtime — watchdog, pool-resized retries, engine fallback chain —
      // before declaring failure.
      try {
        EngineConfig ecfg;
        ecfg.adds_host = cfg.engine;
        SsspResult<W> r = run_solver_guarded(SolverKind::kAddsHost, *p->graph,
                                             p->source, ecfg, cfg.resilience);
        return publish_ok(std::move(r));
      } catch (const Error& e2) {
        out.error =
            std::string(e.what()) + "; guarded fallback: " + e2.what();
        return finish(QueryStatus::kFailed);
      }
    }
  }

  /// Runs K coalesced same-graph queries as lanes of ONE batched solve
  /// (HostEngine::solve_batch). Mirrors run_one's lifecycle per member —
  /// precheck, execute, finish typed — but the engine is charged once,
  /// supervision sees one success/failure event per batch, and every
  /// cacheable lane result is installed in a single locked pass
  /// (ResultCache::insert_batch). The batch deadline is the minimum over
  /// its members; a member's cancel detaches only its lane when it owns
  /// the lane alone, and resolves at fan-out when the lane is shared.
  /// Batches never take the guarded one-shot fallback: K fresh-thread
  /// retries would multiply recovery load exactly when the engine just
  /// proved unhealthy — members fail typed and retry individually
  /// (docs/SERVICE.md §"Batched dispatch").
  void run_batch(uint32_t engine_idx,
                 std::vector<std::unique_ptr<Pending>> members) {
    struct Slot {
      std::unique_ptr<Pending> p;
      QueryOutcome<W> out;
      uint32_t lane = 0;
      bool done = false;
    };
    const double start_ms = uptime.elapsed_ms();
    std::vector<Slot> slots;
    slots.reserve(members.size());
    for (auto& mp : members) {
      Slot s;
      s.out.query_id = mp->id;
      s.out.graph_fp = mp->key.graph_fp;
      s.out.queue_ms = start_ms - mp->submit_ms;
      s.p = std::move(mp);
      slots.push_back(std::move(s));
    }

    const auto member_cancelled = [](const Slot& s) {
      return s.p->q.cancel != nullptr &&
             s.p->q.cancel->load(std::memory_order_acquire);
    };
    const auto finish = [&](Slot& s, QueryStatus st) {
      s.out.status = st;
      s.out.latency_ms = uptime.elapsed_ms() - s.p->submit_ms;
      {
        std::lock_guard<std::mutex> lk(m);
        Tenant* t = tenant_for(s.p->key.graph_fp);
        switch (st) {
          case QueryStatus::kOk:
            project_p2p_locked(s.out, *s.p);
            ++completed;
            recorder.add(s.out.latency_ms);
            if (t) {
              ++t->completed;
              t->recorder.add(s.out.latency_ms);
            }
            break;
          case QueryStatus::kFailed:
            ++failed;
            if (t) ++t->failed;
            break;
          case QueryStatus::kCancelled: ++cancelled; break;
          case QueryStatus::kDeadlineExpired: ++deadline_expired; break;
          default: break;  // not produced here
        }
      }
      switch (st) {
        case QueryStatus::kOk:
          record_query(s.out.cache_hit ? FlightKind::kQueryCacheHit
                                       : FlightKind::kQueryDone,
                       *s.p, uint16_t(engine_idx),
                       s.out.cache_hit ? 1
                                       : uint32_t(s.out.latency_ms * 1000.0));
          break;
        case QueryStatus::kFailed:
          record_query(FlightKind::kQueryFailed, *s.p, uint16_t(engine_idx));
          break;
        case QueryStatus::kCancelled:
          record_query(FlightKind::kQueryCancelled, *s.p,
                       uint16_t(engine_idx));
          break;
        case QueryStatus::kDeadlineExpired:
          record_query(FlightKind::kQueryDeadline, *s.p, uint16_t(engine_idx));
          break;
        default: break;
      }
      s.p->promise.set_value(std::move(s.out));
      s.done = true;
    };

    // Per-member prechecks, same as run_one's preamble: conditions that
    // already hold after the queue wait resolve without burning a lane.
    for (Slot& s : slots) {
      if (member_cancelled(s)) {
        finish(s, QueryStatus::kCancelled);
      } else if (s.p->deadline_ms > 0.0 && s.out.queue_ms >= s.p->deadline_ms) {
        finish(s, QueryStatus::kDeadlineExpired);
      }
    }
    {
      // Dequeue-time cache recheck, one lock for the whole batch (a twin
      // may have completed while these members queued).
      std::lock_guard<std::mutex> lk(m);
      for (Slot& s : slots) {
        if (s.done || !s.p->cacheable) continue;
        if (auto v = cache.lookup(s.p->key, /*count_miss=*/false)) {
          s.out.result = std::move(v);
          s.out.cache_hit = true;
        }
      }
    }
    for (Slot& s : slots)
      if (!s.done && s.out.cache_hit) finish(s, QueryStatus::kOk);

    std::vector<Slot*> live;
    for (Slot& s : slots)
      if (!s.done) live.push_back(&s);
    if (live.empty()) return;
    if (live.size() == 1) {
      // The batch collapsed to one query: run the singleton path — it
      // keeps the guarded fallback and per-query supervision shape.
      return run_one(engine_idx, std::move(live.front()->p));
    }

    const uint64_t fp = live.front()->p->key.graph_fp;
    const std::shared_ptr<const CsrGraph<W>> graph = live.front()->p->graph;

    // Distinct sources become lanes; members repeating a source share one.
    std::vector<LaneQuery> lanes;
    for (Slot* s : live) {
      uint32_t lane = uint32_t(lanes.size());
      for (uint32_t l = 0; l < lanes.size(); ++l) {
        if (lanes[l].source == s->p->source) {
          lane = l;
          break;
        }
      }
      if (lane == lanes.size()) lanes.push_back(LaneQuery{s->p->source, nullptr});
      s->lane = lane;
    }
    // A lane owned by exactly one member carries that member's cancel so a
    // fired cancel detaches the lane mid-solve; a shared lane solves for
    // everyone and a cancelled member resolves at fan-out instead.
    std::vector<uint32_t> owners(lanes.size(), 0);
    for (Slot* s : live) ++owners[s->lane];
    for (Slot* s : live)
      if (owners[s->lane] == 1) lanes[s->lane].cancel = s->p->q.cancel;

    QueryControl ctl;
    double min_deadline = 0.0;
    for (Slot* s : live) {
      if (s->p->deadline_ms <= 0.0) continue;
      const double remaining = s->p->deadline_ms - s->out.queue_ms;
      if (min_deadline <= 0.0 || remaining < min_deadline)
        min_deadline = remaining;
    }
    ctl.deadline_ms = min_deadline;
    ctl.beacon = supervise ? &sup[engine_idx].beacon : nullptr;
    ctl.fault_domain = fp;

    {
      std::lock_guard<std::mutex> lk(m);
      ++batches;
      batched_queries += live.size();
    }
    const auto charge_engine = [&] {
      std::lock_guard<std::mutex> lk(m);
      engine_busy_ms += uptime.elapsed_ms() - start_ms;
      ++engine_queries;
    };
    const uint64_t fault_fires_before = fault::total_fires();
    const auto note_faults = [&] {
      const uint64_t delta = fault::total_fires() - fault_fires_before;
      if (delta > 0)
        record_query(FlightKind::kFaultObserved, *live.front()->p,
                     uint16_t(engine_idx), uint32_t(delta));
    };

    try {
      BatchResult<W> br = engines[engine_idx]->solve_batch(*graph, lanes, ctl);
      charge_engine();
      note_faults();
      if (supervise) {
        std::lock_guard<std::mutex> lk(m);
        EngineSupervision& es = sup[engine_idx];
        es.consecutive_errors = 0;
        es.kill_reason = KillReason::kNone;
        if (Tenant* t = tenant_for(fp))
          if (t->breaker.on_success())
            record(FlightKind::kBreakerClosed, FlightEvent::kNoEngine, fp);
      }
      // One shared_ptr per ok lane; every member of the lane shares it
      // (same immutability contract as a cache hit).
      std::vector<std::shared_ptr<const SsspResult<W>>> lane_results(
          lanes.size());
      for (uint32_t l = 0; l < lanes.size(); ++l) {
        if (br.lanes[l].status != LaneStatus::kOk) continue;
        lane_results[l] = std::make_shared<const SsspResult<W>>(
            std::move(br.lanes[l].result));
      }
      // Cache fill: one entry per distinct ok lane with a cacheable
      // member (members of a lane share the key), installed with the
      // health snapshot under ONE lock acquisition.
      std::vector<std::pair<CacheKey, typename ResultCache<W>::Value>> fills;
      std::vector<bool> filled(lanes.size(), false);
      for (Slot* s : live) {
        if (!s->p->cacheable || filled[s->lane] || !lane_results[s->lane])
          continue;
        fills.emplace_back(s->p->key, lane_results[s->lane]);
        filled[s->lane] = true;
      }
      {
        std::lock_guard<std::mutex> lk(m);
        last_health = br.health;
        if (!fills.empty()) cache.insert_batch(std::move(fills));
      }
      for (Slot* s : live) {
        if (member_cancelled(*s) || !lane_results[s->lane]) {
          finish(*s, QueryStatus::kCancelled);
          continue;
        }
        s->out.result = lane_results[s->lane];
        finish(*s, QueryStatus::kOk);
      }
    } catch (const DeadlineError&) {
      charge_engine();
      note_faults();
      // The min-over-members deadline elapsed: the shared traversal is
      // gone, so every remaining member expires together (documented
      // batching tradeoff — a short-deadline member caps the batch).
      for (Slot* s : live) finish(*s, QueryStatus::kDeadlineExpired);
    } catch (const Error& e) {
      charge_engine();
      note_faults();
      bool quarantined_now = false;
      bool breaker_opened = false;
      if (supervise) {
        std::lock_guard<std::mutex> lk(m);
        EngineSupervision& es = sup[engine_idx];
        const bool killed = es.kill_reason == KillReason::kWedge;
        if (!killed) ++es.consecutive_errors;
        es.kill_reason = KillReason::kNone;
        if (killed ||
            es.consecutive_errors >= cfg.supervisor.quarantine_after_errors) {
          es.state = EngineState::kQuarantined;
          es.consecutive_errors = 0;
          ++es.quarantines;
          es.fault_fp = fp;
          record(FlightKind::kEngineQuarantined, uint16_t(engine_idx),
                 live.front()->p->id, killed ? 0 : es.consecutive_errors);
          rebuild_queue.push_back(engine_idx);
          quarantined_now = true;
        }
        // One breaker event per batch: the engine failed once, not K
        // times — K counts would open the breaker on a single incident.
        if (Tenant* t = tenant_for(fp)) {
          if (t->breaker.on_failure(uptime.elapsed_ms())) {
            breaker_opened = true;
            record(FlightKind::kBreakerOpen, FlightEvent::kNoEngine, fp,
                   t->breaker.consecutive_failures());
            shed_matching_locked(
                [fp](const Pending& q) { return q.key.graph_fp == fp; },
                QueryStatus::kTenantQuarantined,
                "tenant circuit breaker opened",
                FlightKind::kQueryQuarantined);
          }
        }
      }
      if (quarantined_now) rb_cv.notify_one();
      if (breaker_opened)
        ADDS_LOG_WARN("sssp-service: tenant %016llx circuit breaker opened",
                      (unsigned long long)fp);
      const std::string err =
          quarantined_now
              ? std::string("engine quarantined after batch failure: ") +
                    e.what()
              : std::string(e.what());
      for (Slot* s : live) {
        if (member_cancelled(*s)) {
          finish(*s, QueryStatus::kCancelled);
          continue;
        }
        s->out.error = err;
        finish(*s, QueryStatus::kFailed);
      }
    }
  }

  // --- supervisor ----------------------------------------------------------

  void shed_waiting_locked(const char* why, FlightKind kind) {
    const bool is_shutdown = kind == FlightKind::kShutdownDrain;
    shed_matching_locked([](const Pending&) { return true; },
                         is_shutdown ? QueryStatus::kShutdown
                                     : QueryStatus::kOverloaded,
                         why, kind);
  }

  void supervisor_loop() {
    std::unique_lock<std::mutex> lk(m);
    while (!stopping) {
      const double now = uptime.elapsed_ms();

      // Wedge detection: a busy slot whose pulse froze gets its query
      // killed via the engine's own abort path. The dispatcher observes
      // the thrown abort, sees kill_reason, and quarantines the slot.
      for (uint32_t i = 0; i < sup.size(); ++i) {
        EngineSupervision& s = sup[i];
        if (s.state != EngineState::kBusy) continue;
        if (s.kill_reason != KillReason::kNone) continue;  // already shot
        if (beacon_wedged(s, now, cfg.supervisor.wedge_ms)) {
          s.kill_reason = KillReason::kWedge;
          ++s.kills;
          record(FlightKind::kEngineWedged, uint16_t(i), s.active_query,
                 uint32_t(now - std::max(s.last_pulse_ms, s.busy_since_ms)));
          // interrupt() is cheap (sticky abort + wake) and safe to call
          // under m: the engine mutex it takes is leaf-level.
          engines[i]->interrupt();
        }
      }

      // Per-tenant health bands. Each tenant's governor sees ITS view of
      // the fleet (a slot another tenant poisoned still counts as capacity
      // for this one) and its own queue pressure and latency — wedges and
      // brownout stay scoped to the offending graph.
      const uint32_t fleet = uint32_t(sup.size()) - count_retired();
      for (auto& [fp, t] : tenants) {
        HealthSignals sig;
        sig.load = tenant_queue_quota > 0
                       ? double(t.waiting) / double(tenant_queue_quota)
                       : 0.0;
        sig.engines_available = tenant_view_available(fp);
        sig.engines_in_fleet = fleet;
        if (cfg.supervisor.brownout_p99_ms > 0.0)
          sig.p99_ms = t.recorder.summary().p99;
        const ServiceHealth before = t.governor.state();
        if (t.governor.update(sig)) {
          record(FlightKind::kTenantHealth, FlightEvent::kNoEngine, fp,
                 (uint32_t(before) << 8) | uint32_t(t.governor.state()));
          record(FlightKind::kHealthTransition, FlightEvent::kNoEngine, fp,
                 (uint32_t(before) << 8) | uint32_t(t.governor.state()),
                 sig.engines_available);
        }

        // Shedding, tenant-scoped: when THIS tenant's availability view is
        // zero nothing will ever drain its backlog — fail it typed now
        // instead of letting its callers hang. Other tenants' queues are
        // untouched (their engines are fine).
        if (sig.engines_available == 0 && t.waiting > 0) {
          const uint64_t shed_fp = fp;
          shed_matching_locked(
              [shed_fp](const Pending& p) {
                return p.key.graph_fp == shed_fp;
              },
              QueryStatus::kOverloaded, "shed: no engines available",
              FlightKind::kQueryShed);
        }
      }

      // Stale-window close: stop serving the previous default generation
      // once its bounded staleness budget is spent. Its entries are
      // dropped only if the graph also left the catalog — a still-resident
      // tenant keeps them for queries that target it explicitly.
      if (stale_fp != 0 && now >= stale_deadline_ms) {
        const size_t dropped =
            catalog.contains(stale_fp) ? 0 : cache.invalidate_fp(stale_fp);
        record(FlightKind::kStaleWindowExpired, FlightEvent::kNoEngine,
               stale_fp, uint32_t(dropped));
        stale_fp = 0;
      }

      sup_cv.wait_for(lk, std::chrono::duration<double, std::milli>(
                              cfg.supervisor.tick_ms));
    }
  }

  // --- rebuilder -----------------------------------------------------------

  /// Owns quarantined slots end to end: destroy (joins the wedged engine's
  /// workers — safe, the failed solve quiesced them), rebuild, probe, and
  /// either return to service or retire. One slot at a time: rebuilds are
  /// rare and serializing them caps the memory spike of an extra
  /// pool+worker set to one.
  void rebuild_loop() {
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
      rb_cv.wait(lk, [&] {
        return stopping || !rebuild_queue.empty() || !repair_queue.empty() ||
               !landmark_queue.empty();
      });
      if (stopping) return;
      if (rebuild_queue.empty()) {
        if (!repair_queue.empty()) {
          // No slot to restore: drain one delta repair. Rebuilds keep
          // priority — restoring fleet capacity beats repair latency (the
          // stale window covers the wait).
          RepairTask task = std::move(repair_queue.front());
          repair_queue.pop_front();
          run_repair_locked(lk, std::move(task));
        } else {
          // Lowest priority: landmark tables are an acceleration, not an
          // answer — while one is pending, point-to-point queries ride
          // the engine path, typed by the kBuilding/kRepairing status.
          LandmarkTask task = std::move(landmark_queue.front());
          landmark_queue.pop_front();
          run_landmark_locked(lk, std::move(task));
        }
        continue;
      }
      const uint32_t i = rebuild_queue.front();
      rebuild_queue.pop_front();
      sup[i].state = EngineState::kRebuilding;
      // The rebuilt slot starts unbound; drop the old binding's snapshot
      // ref now (the engine it belonged to is about to be destroyed).
      sup[i].bound_fp = 0;
      bound_graphs[i].reset();
      // Probe on the default tenant's graph (any resident one if no
      // default is set) — current generation, not the old query's. Probes
      // run in fault domain 0, so tenant-scoped chaos never fails them.
      auto probe_graph = catalog.try_lookup(default_fp);
      if (!probe_graph) {
        const auto residents = catalog.entries();
        if (!residents.empty())
          probe_graph = catalog.try_lookup(residents.front().graph_fp);
      }

      lk.unlock();
      std::string probe_err;
      bool ok = true;
      try {
        engines[i].reset();  // join workers, free pool
        engines[i] = std::make_unique<HostEngine<W>>(cfg.engine);
      } catch (const Error& e) {
        ok = false;
        probe_err = std::string("rebuild failed: ") + e.what();
      }
      if (ok && probe_graph && !probe_graph->empty()) {
        QueryControl ctl;
        ctl.cancel = &stop_flag;
        ctl.deadline_ms = cfg.supervisor.probe_deadline_ms;
        ctl.beacon = &sup[i].beacon;
        try {
          engines[i]->solve(*probe_graph, VertexId{0}, ctl);
        } catch (const Error& e) {
          ok = false;
          probe_err = e.what();
        }
      }
      lk.lock();

      if (stopping) return;  // abandoned mid-rebuild; shutdown sweeps up
      EngineSupervision& s = sup[i];
      ++s.rebuilds;
      record(FlightKind::kEngineRebuilt, uint16_t(i), 0, uint32_t(s.rebuilds));
      if (ok) {
        s.probe_failures = 0;
        s.consecutive_errors = 0;
        s.fault_fp = 0;  // blast damage repaired; attribution cleared
        s.state = EngineState::kIdle;
        record(FlightKind::kEngineRecovered, uint16_t(i), 0);
        cv.notify_all();  // slot is serviceable again
      } else {
        ++s.probe_failures;
        ++probe_failures_total;
        record(FlightKind::kEngineProbeFailed, uint16_t(i), 0,
               s.probe_failures);
        ADDS_LOG_WARN(
            "sssp-service: engine %u post-rebuild probe failed (%u/%u): %s",
            i, s.probe_failures, cfg.supervisor.max_probe_failures,
            probe_err.c_str());
        if (s.probe_failures >= cfg.supervisor.max_probe_failures) {
          s.state = EngineState::kRetired;
          record(FlightKind::kEngineRetired, uint16_t(i), 0,
                 s.probe_failures);
          ADDS_LOG_WARN("sssp-service: engine %u permanently retired", i);
          dump_flight_to_log("engine retired");
          cv.notify_all();  // its dispatcher exits
        } else {
          s.state = EngineState::kQuarantined;
          rebuild_queue.push_back(i);  // try again
        }
      }
    }
  }

  // --- delta repair --------------------------------------------------------

  /// Runs one warm repair on the rebuilder's dedicated engine. Enters and
  /// leaves with `lk` held; the solve itself runs unlocked. Failure
  /// containment, in order: a thrown plan/solve error, a deadline-expired
  /// (wedged) repair, and a flunked exactness certificate all fall back
  /// typed to a cold solve on the child — the half-repaired tree is
  /// discarded, never cached. Either way the window's pending count drops
  /// and, at zero, the parent generation is handed over.
  void run_repair_locked(std::unique_lock<std::mutex>& lk, RepairTask task) {
    record(FlightKind::kRepairStart, FlightEvent::kNoEngine, task.child_fp,
           uint32_t(task.source));
    const double t0 = uptime.elapsed_ms();
    lk.unlock();

    if (!repair_engine)
      repair_engine = std::make_unique<HostEngine<W>>(cfg.engine);
    std::shared_ptr<const SsspResult<W>> result;
    std::string repair_err;
    try {
      RepairPlan<W> plan =
          plan_repair(*task.parent, *task.child, task.delta->classification,
                      task.warm->dist, task.source);
      QueryControl ctl;
      ctl.cancel = &stop_flag;
      ctl.deadline_ms = cfg.delta.repair_deadline_ms;
      ctl.fault_domain = task.child_fp;
      SsspResult<W> res =
          repair_engine->solve_repair(*task.child, task.source, plan, ctl);
      if (cfg.delta.verify) {
        const RepairVerdict v =
            verify_repair(*task.child, task.source, res.dist);
        if (!v.exact)
          throw Error(
              "repair certificate failed (" +
              std::to_string(v.feasibility_violations) + " infeasible, " +
              std::to_string(v.unsupported) + " unsupported labels)");
      }
      result = std::make_shared<const SsspResult<W>>(std::move(res));
    } catch (const Error& e) {
      repair_err = e.what();
    }
    if (!repair_err.empty()) {
      // Typed fallback: full recompute on the child. Domain 0, so the
      // chaos plan that killed the repair cannot also kill the answer.
      try {
        QueryControl ctl;
        ctl.cancel = &stop_flag;
        ctl.deadline_ms = cfg.delta.repair_deadline_ms;
        SsspResult<W> res =
            repair_engine->solve(*task.child, task.source, ctl);
        result = std::make_shared<const SsspResult<W>>(std::move(res));
      } catch (const Error& e) {
        // Both paths failed (shutdown race, injected chaos on the whole
        // engine). Queries for this (source, child) recompute on demand —
        // degraded to cold, never wrong, never hung.
        ADDS_LOG_WARN(
            "sssp-service: delta repair fallback solve failed "
            "(source=%u child=%016llx): %s",
            unsigned(task.source), (unsigned long long)task.child_fp,
            e.what());
      }
    }

    lk.lock();
    if (repair_err.empty()) {
      ++repairs_ok;
      if (auto it = tenants.find(task.child_fp); it != tenants.end())
        ++it->second.repairs_ok;
      record(FlightKind::kRepairDone, FlightEvent::kNoEngine, task.child_fp,
             uint32_t(task.source),
             uint32_t((uptime.elapsed_ms() - t0) * 1e3));
    } else {
      ++repair_fallbacks;
      if (auto it = tenants.find(task.child_fp); it != tenants.end())
        ++it->second.repair_fallbacks;
      record(FlightKind::kRepairFallback, FlightEvent::kNoEngine,
             task.child_fp, uint32_t(task.source));
      ADDS_LOG_WARN(
          "sssp-service: delta repair fell back to cold solve "
          "(source=%u child=%016llx): %s",
          unsigned(task.source), (unsigned long long)task.child_fp,
          repair_err.c_str());
    }
    // Cache only while the child is still the serving generation — a
    // retire/evict that raced the repair wins.
    if (result && !stopping && catalog.contains(task.child_fp))
      cache.insert(CacheKey{task.child_fp, task.source, config_digest},
                   std::move(result));
    settle_repair_locked(task.child_fp);
  }

  /// One repair of `child_fp`'s window settled (ok or fallback). At zero
  /// pending the handover completes: the parent generation retires.
  void settle_repair_locked(uint64_t child_fp) {
    const auto it = delta_windows.find(child_fp);
    if (it == delta_windows.end()) return;
    if (it->second.pending > 0) --it->second.pending;
    if (it->second.pending > 0) return;
    const uint64_t parent_fp = it->second.parent_fp;
    delta_windows.erase(it);
    retire_parent_locked(parent_fp);
  }

  /// Retires a delta's parent generation once nothing depends on it:
  /// cache entries invalidated, queued queries resolved typed, bindings
  /// released. In-flight queries hold their own snapshot refs. A parent
  /// still serving another open window (chained deltas) stays resident.
  void retire_parent_locked(uint64_t parent_fp) {
    for (const auto& [cfp, w] : delta_windows)
      if (w.parent_fp == parent_fp) return;
    if (!catalog.retire(parent_fp)) return;  // already gone — fine
    const size_t dropped = cache.invalidate_fp(parent_fp);
    drop_tenant_locked(parent_fp);
    record(FlightKind::kGraphRetired, FlightEvent::kNoEngine, parent_fp,
           uint32_t(dropped));
  }

  // --- landmark tables -----------------------------------------------------

  /// Queues a cold table build for `fp` if the landmark layer is enabled
  /// and this generation has no table, build, or typed decline on record.
  /// Call under m; returns true when a task was queued (notify rb_cv).
  bool schedule_landmark_build_locked(uint64_t fp) {
    if (!cfg.landmark.enabled) return false;
    if (landmarks.status(fp) != LandmarkTableStatus::kNone) return false;
    auto g = catalog.try_lookup(fp);
    if (!g || g->empty()) return false;
    landmarks.set_status(fp, LandmarkTableStatus::kBuilding);
    LandmarkTask t;
    t.fp = fp;
    t.graph = std::move(g);
    record(FlightKind::kTableBuildStart, FlightEvent::kNoEngine, fp, 0);
    landmark_queue.push_back(std::move(t));
    return true;
  }

  /// Runs one landmark-table build (cold) or warm per-lane repair on the
  /// rebuilder's dedicated engine. Enters and leaves with `lk` held; the
  /// build itself runs unlocked. Failure containment: a failed warm
  /// repair falls back typed to a cold build (kTableRebuildFallback); a
  /// failed cold build types the generation kFailed (asymmetric graphs
  /// kUnsupported) and point-to-point queries keep riding the engine path
  /// — a table is installed whole or not at all, never a partial bound.
  void run_landmark_locked(std::unique_lock<std::mutex>& lk,
                           LandmarkTask task) {
    const double t0 = uptime.elapsed_ms();
    lk.unlock();

    if (!repair_engine)
      repair_engine = std::make_unique<HostEngine<W>>(cfg.engine);
    QueryControl ctl;
    ctl.cancel = &stop_flag;
    ctl.deadline_ms = cfg.landmark.build_deadline_ms;
    ctl.fault_domain = task.fp;
    // Build-time chaos (landmark.build and engine-level sites) fires in
    // this tenant's domain, so a targeted plan can break one tenant's
    // builds without touching repairs or probes (domain 0).
    fault::ThreadDomainScope domain(task.fp);

    std::shared_ptr<const LandmarkTable<W>> table;
    bool unsupported = false;
    bool fell_back = false;
    std::string err;
    if (task.warm) {
      try {
        if (!task.parent_table)
          throw Error("parent table gone before repair");
        table = LandmarkOracle<W>::repair(
            *task.parent_table, *task.parent, *task.graph, task.fp,
            task.delta->classification, *repair_engine, cfg.landmark, ctl);
      } catch (const LandmarkUnsupportedError& e) {
        unsupported = true;
        err = e.what();
      } catch (const Error& e) {
        fell_back = true;  // typed fallback: cold rebuild below
        err = e.what();
      }
    }
    if (table == nullptr && !unsupported) {
      try {
        table = LandmarkOracle<W>::build(*task.graph, task.fp, *repair_engine,
                                         cfg.landmark, ctl);
      } catch (const LandmarkUnsupportedError& e) {
        unsupported = true;
        err = e.what();
      } catch (const Error& e) {
        err = e.what();
      }
    }

    lk.lock();
    if (fell_back) {
      ++landmark_rebuild_fallbacks;
      record(FlightKind::kTableRebuildFallback, FlightEvent::kNoEngine,
             task.fp, 1);
      ADDS_LOG_WARN(
          "sssp-service: landmark table repair fell back to cold build "
          "(fp=%016llx): %s",
          (unsigned long long)task.fp, err.c_str());
    }
    // Install only while the generation is still catalog-resident — a
    // retire/evict that raced the build wins (drop_tenant_locked already
    // dropped the registry entry; do not resurrect it).
    const bool resident = !stopping && catalog.contains(task.fp);
    if (table != nullptr && resident) {
      landmarks.install(task.fp, table);
      if (task.warm && !fell_back) {
        ++landmark_repairs_ok;
        record(FlightKind::kTableRepaired, FlightEvent::kNoEngine, task.fp,
               table->num_landmarks(), uint32_t(uptime.elapsed_ms() - t0));
      } else {
        ++landmark_builds_ok;
        record(FlightKind::kTableBuilt, FlightEvent::kNoEngine, task.fp,
               table->num_landmarks(), uint32_t(uptime.elapsed_ms() - t0));
      }
    } else if (table == nullptr && resident) {
      landmarks.set_status(task.fp, unsupported
                                        ? LandmarkTableStatus::kUnsupported
                                        : LandmarkTableStatus::kFailed);
      if (unsupported) {
        ++landmark_unsupported;
      } else {
        ++landmark_build_failures;
        ADDS_LOG_WARN(
            "sssp-service: landmark table build failed (fp=%016llx): %s",
            (unsigned long long)task.fp, err.c_str());
      }
      record(FlightKind::kTableBuildFailed, FlightEvent::kNoEngine, task.fp,
             unsupported ? 1 : 0);
    } else {
      landmarks.drop(task.fp);  // generation left the catalog mid-build
    }
  }

  /// SsspService::apply_delta body. Runs under `m` end to end: the
  /// catalog's eviction hook assumes the service lock, and publication +
  /// repair scheduling + default handover must be atomic against submits.
  DeltaOutcome apply_delta(uint64_t parent_fp_in, const GraphDelta<W>& delta) {
    std::unique_lock<std::mutex> lk(m);
    ADDS_REQUIRE(!stopping, "sssp-service: shut down");
    const uint64_t parent_fp = parent_fp_in != 0 ? parent_fp_in : default_fp;
    ADDS_REQUIRE(parent_fp != 0, "sssp-service: no graph set");

    auto ad = std::make_shared<const AppliedDelta<W>>(
        catalog.apply_delta(parent_fp, delta));
    DeltaOutcome out;
    out.parent_fp = ad->parent_fp;
    out.child_fp = ad->child_fp;
    out.stats = ad->classification.stats;
    if (ad->unchanged()) {
      out.unchanged = true;
      return out;
    }
    ++deltas_applied;

    // The child is a first-class tenant from this point on.
    const auto [tit, fresh] = tenants.try_emplace(ad->child_fp, cfg);
    if (fresh && supervise) {
      HealthSignals sig;
      sig.engines_available = tenant_view_available(ad->child_fp);
      sig.engines_in_fleet = uint32_t(sup.size()) - count_retired();
      tit->second.governor.update(sig);
    }
    record(FlightKind::kGraphPublished, FlightEvent::kNoEngine, ad->child_fp,
           uint32_t(catalog.size()), 1);
    if (default_fp == ad->parent_fp) {
      default_fp = ad->child_fp;
      out.was_default = true;
    }

    // Queued queries that asked for the default route follow the handover:
    // they were bound to the parent only because it was the default when
    // they were admitted, and re-aiming them at the child (same vertex
    // count by construction) keeps a zero-repair handover from shedding
    // them when the parent retires. Explicitly pinned queries keep their
    // generation — if it retires, they resolve typed kUnknownGraph.
    if (out.was_default)
      for (auto& p : waiting)
        if (p->q.graph_fp == 0 && p->key.graph_fp == ad->parent_fp) {
          p->key.graph_fp = ad->child_fp;
          p->graph = ad->child;
        }

    // One warm repair per distinct cached source of the parent: each
    // cached tree becomes the warm labels for an exact child tree.
    std::unordered_set<VertexId> seen;
    uint32_t scheduled = 0;
    for (auto& [key, value] : cache.entries_of_fp(ad->parent_fp)) {
      if (!value || value->dist.size() != ad->child->num_vertices()) continue;
      if (!seen.insert(key.source).second) continue;
      RepairTask t;
      t.child_fp = ad->child_fp;
      t.parent_fp = ad->parent_fp;
      t.source = key.source;
      t.parent = ad->parent;
      t.child = ad->child;
      t.warm = std::move(value);
      t.delta = ad;
      repair_queue.push_back(std::move(t));
      ++scheduled;
    }
    repairs_scheduled += scheduled;
    out.repairs_scheduled = scheduled;
    record(FlightKind::kDeltaPublished, FlightEvent::kNoEngine, ad->child_fp,
           scheduled, uint32_t(ad->classification.stats.total()));

    // Landmark table lineage: the child generation warm-repairs the
    // parent's table per landmark lane when one is READY (the snapshot
    // rides the task refcounted — parent retirement cannot pull it out
    // from under the repair), and cold-builds otherwise. Until the task
    // lands, the child's kRepairing/kBuilding status types the window and
    // p2p queries ride the engine path.
    bool lm_scheduled = false;
    if (cfg.landmark.enabled &&
        landmarks.status(ad->child_fp) == LandmarkTableStatus::kNone) {
      LandmarkTask t;
      t.fp = ad->child_fp;
      t.graph = ad->child;
      t.parent_table = landmarks.lookup(ad->parent_fp);
      if (t.parent_table != nullptr) {
        t.warm = true;
        t.parent_fp = ad->parent_fp;
        t.parent = ad->parent;
        t.delta = ad;
        landmarks.set_status(ad->child_fp, LandmarkTableStatus::kRepairing);
      } else {
        landmarks.set_status(ad->child_fp, LandmarkTableStatus::kBuilding);
      }
      record(FlightKind::kTableBuildStart, FlightEvent::kNoEngine,
             ad->child_fp, t.warm ? 1 : 0);
      landmark_queue.push_back(std::move(t));
      lm_scheduled = true;
    }

    if (scheduled == 0) {
      // Nothing cached to repair: the handover completes immediately.
      retire_parent_locked(ad->parent_fp);
      lk.unlock();
      if (lm_scheduled) rb_cv.notify_all();
      return out;
    }
    DeltaWindow& w = delta_windows[ad->child_fp];
    w.parent_fp = ad->parent_fp;
    w.pending += scheduled;  // merge with a re-applied identical delta
    w.stale_until_ms = uptime.elapsed_ms() + cfg.delta.stale_serve_ms;
    lk.unlock();
    rb_cv.notify_all();
    return out;
  }

  // --- admission -----------------------------------------------------------

  std::future<QueryOutcome<W>> submit(VertexId source, const QueryOptions& q) {
    auto p = std::make_unique<Pending>();
    p->source = source;
    p->q = q;
    std::future<QueryOutcome<W>> fut = p->promise.get_future();

    {
      std::unique_lock<std::mutex> lk(m);
      if (stopping) {
        QueryOutcome<W> out;
        out.status = QueryStatus::kShutdown;
        out.error = "service is shut down";
        p->promise.set_value(std::move(out));
        return fut;
      }
      // Tenant resolution: an explicit fingerprint routes to that tenant;
      // 0 routes to the set_graph default. Misuse (no graph anywhere)
      // still throws; a *wrong* fingerprint is a per-query condition and
      // resolves typed.
      ADDS_REQUIRE(q.graph_fp != 0 || default_fp != 0,
                   "sssp-service: no graph set");
      const uint64_t fp = q.graph_fp != 0 ? q.graph_fp : default_fp;
      p->id = ++submitted;
      p->submit_ms = uptime.elapsed_ms();
      p->graph = catalog.try_lookup(fp);
      if (p->graph == nullptr) {
        ++unknown_graph;
        QueryOutcome<W> out;
        out.status = QueryStatus::kUnknownGraph;
        out.query_id = p->id;
        out.graph_fp = fp;
        out.error = "graph not resident in catalog";
        record_query(FlightKind::kUnknownGraph, *p);
        p->promise.set_value(std::move(out));
        return fut;
      }
      ADDS_REQUIRE(source < p->graph->num_vertices(),
                   "sssp-service: source vertex out of range");
      ADDS_REQUIRE(q.target == kInvalidVertex ||
                       q.target < p->graph->num_vertices(),
                   "sssp-service: target vertex out of range");
      Tenant& ten = tenants.at(fp);  // resident => tenant state exists
      ++ten.submitted;
      p->deadline_ms =
          q.deadline_ms > 0.0 ? q.deadline_ms : cfg.default_deadline_ms;
      p->cacheable = !q.bypass_cache && cache.capacity() > 0;
      // Point-to-point queries key under a target-tagged digest: a p2p
      // fallback's full tree and a plain full-SSSP tree never alias.
      p->key = CacheKey{fp, source, p2p_digest(config_digest, q.target)};

      // Circuit breaker: an open tenant rejects typed before any queue or
      // engine resource is spent on it. The cooldown check lives inside
      // admit() — an expired cooldown half-opens here and lets the query
      // through as the trial.
      if (supervise && ten.breaker.enabled()) {
        const BreakerState before = ten.breaker.state();
        const auto verdict = ten.breaker.admit(p->submit_ms);
        if (before == BreakerState::kOpen &&
            ten.breaker.state() == BreakerState::kHalfOpen)
          record(FlightKind::kBreakerHalfOpen, FlightEvent::kNoEngine, fp);
        if (verdict == TenantBreaker::Admit::kReject) {
          ++tenant_quarantined;
          ++ten.quarantined;
          QueryOutcome<W> out;
          out.status = QueryStatus::kTenantQuarantined;
          out.query_id = p->id;
          out.graph_fp = fp;
          out.error = "tenant circuit breaker open";
          record_query(FlightKind::kQueryQuarantined, *p);
          p->promise.set_value(std::move(out));
          return fut;
        }
      }

      const ServiceHealth health = supervise ? ten.governor.state()
                                             : ServiceHealth::kHealthy;
      if (health == ServiceHealth::kBrownout) {
        // Degraded-mode deadline clamp: spend less engine time per query
        // while capacity is short.
        const double clamp = cfg.supervisor.brownout_deadline_clamp_ms;
        if (clamp > 0.0 &&
            (p->deadline_ms <= 0.0 || p->deadline_ms > clamp)) {
          p->deadline_ms = clamp;
          ++brownout_clamped;
        }
      }

      // Point-to-point routing: a READY landmark table answers before any
      // queue or engine resource is spent. Tight triangle-inequality
      // bounds (or a landmark endpoint, or decisive unreachability) serve
      // exact right here; otherwise an ALT-guided A* runs on the SUBMIT
      // thread over refcounted snapshots, outside the lock — engines stay
      // free for full solves. No table (building, repairing, unsupported,
      // failed, disabled) falls through to normal admission: the typed
      // engine path. An oracle answer is exact or it is not given.
      if (q.target != kInvalidVertex && cfg.landmark.enabled) {
        if (auto table = landmarks.lookup(fp)) {
          const OracleAnswer<W> ans = table->answer(source, q.target);
          if (ans.answered) {
            QueryOutcome<W> out;
            out.status = QueryStatus::kOk;
            out.p2p_serve = P2pServe::kOracleExact;
            out.p2p_reachable = ans.reachable;
            out.p2p_distance = ans.distance;
            out.graph_fp = fp;
            out.query_id = p->id;
            out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
            ++completed;
            ++ten.completed;
            ++oracle_exact_hits;
            ++ten.oracle_exact_hits;
            recorder.add(out.latency_ms);
            ten.recorder.add(out.latency_ms);
            record(FlightKind::kOracleServe, FlightEvent::kNoEngine, p->id,
                   uint32_t(source), uint32_t(P2pServe::kOracleExact));
            p->promise.set_value(std::move(out));
            return fut;
          }
          const auto graph = p->graph;
          const uint64_t qid = p->id;
          const double submit_ms = p->submit_ms;
          lk.unlock();
          PointToPointResult<W> r =
              astar(*graph, source, q.target,
                    LandmarkHeuristic<W>(table->row_ptrs(), q.target));
          lk.lock();
          QueryOutcome<W> out;
          out.status = QueryStatus::kOk;
          out.p2p_serve = P2pServe::kAltSearch;
          out.p2p_reachable = r.reachable;
          out.p2p_distance = r.distance;
          out.graph_fp = fp;
          out.query_id = qid;
          out.latency_ms = uptime.elapsed_ms() - submit_ms;
          ++completed;
          ++alt_searches;
          recorder.add(out.latency_ms);
          // `ten` may have retired while the lock was dropped — re-find.
          if (Tenant* t = tenant_for(fp)) {
            ++t->completed;
            ++t->alt_searches;
            t->recorder.add(out.latency_ms);
          }
          record(FlightKind::kOracleServe, FlightEvent::kNoEngine, qid,
                 uint32_t(source), uint32_t(P2pServe::kAltSearch));
          p->promise.set_value(std::move(out));
          return fut;
        }
      }

      if (p->cacheable) {
        if (auto v = cache.lookup(p->key)) {
          QueryOutcome<W> out;
          out.status = QueryStatus::kOk;
          out.result = std::move(v);
          out.cache_hit = true;
          out.graph_fp = fp;
          out.query_id = p->id;
          out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
          project_p2p_locked(out, *p);
          ++completed;
          ++ten.completed;
          recorder.add(out.latency_ms);
          ten.recorder.add(out.latency_ms);
          record_query(FlightKind::kQueryCacheHit, *p);
          p->promise.set_value(std::move(out));
          return fut;
        }
        // Brownout bounded-staleness serve (default tenant only — the
        // stale generation is the graph set_graph replaced): a miss on
        // the current generation may still hit the previous one while its
        // window is open. The outcome says so (stale=true, old fp).
        if (health == ServiceHealth::kBrownout && fp == default_fp &&
            stale_fp != 0 && uptime.elapsed_ms() < stale_deadline_ms) {
          const CacheKey old_key{stale_fp, source,
                                 p2p_digest(config_digest, q.target)};
          if (auto v = cache.lookup(old_key, /*count_miss=*/false)) {
            QueryOutcome<W> out;
            out.status = QueryStatus::kOk;
            out.result = std::move(v);
            out.cache_hit = true;
            out.stale = true;
            out.graph_fp = stale_fp;
            out.query_id = p->id;
            out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
            project_p2p_locked(out, *p);
            ++completed;
            ++ten.completed;
            ++stale_hits;
            ++ten.stale_hits;
            recorder.add(out.latency_ms);
            ten.recorder.add(out.latency_ms);
            record_query(FlightKind::kQueryStaleHit, *p);
            p->promise.set_value(std::move(out));
            return fut;
          }
        }
        // Delta repair window: a miss on a freshly-patched child
        // generation serves the PARENT's cached tree as a typed
        // bounded-stale answer while the warm repair is still in flight.
        // The outcome carries the parent's fingerprint — the caller knows
        // exactly which graph version answered.
        const auto dw = delta_windows.find(fp);
        if (dw != delta_windows.end() && dw->second.pending > 0 &&
            uptime.elapsed_ms() < dw->second.stale_until_ms) {
          const CacheKey pkey{dw->second.parent_fp, source,
                              p2p_digest(config_digest, q.target)};
          if (auto v = cache.lookup(pkey, /*count_miss=*/false)) {
            QueryOutcome<W> out;
            out.status = QueryStatus::kOk;
            out.result = std::move(v);
            out.cache_hit = true;
            out.stale = true;
            out.graph_fp = dw->second.parent_fp;
            out.query_id = p->id;
            out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
            project_p2p_locked(out, *p);
            ++completed;
            ++ten.completed;
            ++delta_stale_hits;
            ++ten.delta_stale_hits;
            recorder.add(out.latency_ms);
            ten.recorder.add(out.latency_ms);
            record_query(FlightKind::kQueryStaleHit, *p);
            p->promise.set_value(std::move(out));
            return fut;
          }
        }
      }

      const auto shed_overloaded = [&](const std::string& why,
                                       bool tenant_scoped) {
        ++shed;
        ++ten.shed;
        QueryOutcome<W> out;
        out.status = QueryStatus::kOverloaded;
        out.query_id = p->id;
        out.graph_fp = fp;
        out.error = why;
        record_query(tenant_scoped ? FlightKind::kTenantShed
                                   : FlightKind::kQueryShed,
                     *p);
        p->promise.set_value(std::move(out));
      };

      if (health == ServiceHealth::kShedding) {
        shed_overloaded("service shedding: no engines available", false);
        return fut;
      }
      // Per-tenant admission quota: a tenant burst sheds ITS OWN traffic
      // once its queue share is spent; other tenants keep queueing into
      // the remaining depth.
      if (ten.waiting >= tenant_queue_quota) {
        shed_overloaded("tenant admission quota full (queue_quota=" +
                            std::to_string(tenant_queue_quota) + ")",
                        true);
        return fut;
      }
      if (waiting.size() >= cfg.max_queue_depth) {
        // Graceful shedding: reject now rather than queue into an
        // unbounded backlog the deadline will kill anyway.
        shed_overloaded("admission queue full (max_queue_depth=" +
                            std::to_string(cfg.max_queue_depth) + ")",
                        false);
        return fut;
      }
      record_query(FlightKind::kQueryAdmit, *p);
      ++ten.waiting;
      waiting.push_back(std::move(p));
      peak_depth = std::max<uint32_t>(peak_depth, uint32_t(waiting.size()));
    }
    // notify_all, not notify_one: with per-slot predicates a notify_one
    // could land on a parked quarantined slot's dispatcher, which would
    // swallow the wake without running the query.
    cv.notify_all();
    return fut;
  }

  // --- tenancy surface -------------------------------------------------------

  /// Shared publish path (under m): catalog residency (possibly evicting
  /// the LRU unpinned tenant through the hook) plus this service's Tenant
  /// bulkhead record.
  uint64_t publish_locked(std::shared_ptr<const CsrGraph<W>> g, bool pinned,
                          uint64_t fp) {
    catalog.publish(std::move(g), pinned, fp);  // may run on_evicted_locked
    const auto [it, fresh] = tenants.try_emplace(fp, cfg);
    if (fresh && supervise) {
      // Seed the new tenant's band from the signals as they stand instead
      // of assuming kHealthy until the next supervisor tick — a submit
      // racing that tick must already see the configured policy.
      HealthSignals sig;
      sig.engines_available = tenant_view_available(fp);
      sig.engines_in_fleet = uint32_t(sup.size()) - count_retired();
      it->second.governor.update(sig);
    }
    record(FlightKind::kGraphPublished, FlightEvent::kNoEngine, fp,
           uint32_t(catalog.size()), pinned ? 1 : 0);
    // Publish-time table build: p2p queries ride the engine path (typed
    // kBuilding) until the rebuilder lands the table.
    if (schedule_landmark_build_locked(fp)) rb_cv.notify_all();
    return fp;
  }

  uint64_t publish(std::shared_ptr<const CsrGraph<W>> g, bool pinned,
                   uint64_t fp) {
    std::lock_guard<std::mutex> lk(m);
    return publish_locked(std::move(g), pinned, fp);
  }

  bool retire(uint64_t fp) {
    std::lock_guard<std::mutex> lk(m);
    if (!catalog.retire(fp)) return false;
    const size_t dropped = cache.invalidate_fp(fp);
    drop_tenant_locked(fp);
    record(FlightKind::kGraphRetired, FlightEvent::kNoEngine, fp,
           uint32_t(dropped));
    return true;
  }

  std::vector<uint64_t> residents() const {
    std::vector<uint64_t> fps;
    for (const auto& e : catalog.entries()) fps.push_back(e.graph_fp);
    return fps;
  }

  /// set_graph = publish(pinned) + default routing. The outgoing default
  /// is unpinned but stays resident, and — deliberately — its cache
  /// entries are NOT invalidated: they are still correct for queries that
  /// target its fingerprint, and publishing tenant B must never cost
  /// tenant A its cache. Dead entries die by LRU or when their graph
  /// leaves the catalog.
  void set_graph(std::shared_ptr<const CsrGraph<W>> g, uint64_t fp) {
    std::lock_guard<std::mutex> lk(m);
    const uint64_t old_fp = default_fp;
    publish_locked(std::move(g), /*pinned=*/true, fp);
    if (old_fp != 0 && old_fp != fp) catalog.set_pinned(old_fp, false);
    default_fp = fp;
    const double window = supervise ? cfg.supervisor.stale_serve_ms : 0.0;
    if (window > 0.0 && old_fp != 0 && old_fp != fp) {
      // Keep the outgoing generation servable to default-routed brownout
      // queries for the bounded window; at most one old generation is ever
      // retained in that role.
      if (stale_fp != 0 && stale_fp != fp && !catalog.contains(stale_fp))
        cache.invalidate_fp(stale_fp);
      stale_fp = old_fp;
      stale_deadline_ms = uptime.elapsed_ms() + window;
    } else if (old_fp != fp) {
      stale_fp = 0;
    }
    record(FlightKind::kGraphSwap, FlightEvent::kNoEngine, fp, 0,
           uint32_t(window));
  }

  // --- persistence (src/persist/ state store) -------------------------------

  /// Collects the serving state under m — refcounted snapshots only, so
  /// the lock is held for bookkeeping, not byte-copying — then serializes
  /// and publishes the store OUTSIDE the lock. Queries keep flowing while
  /// the bytes hit disk.
  SaveOutcome save_state(const std::string& state_dir) {
    SaveOutcome out;
    persist::StateSnapshot<W> snap;
    std::vector<std::pair<CacheKey, std::shared_ptr<const SsspResult<W>>>>
        cache_rows;
    {
      std::lock_guard<std::mutex> lk(m);
      const auto residents = catalog.entries();
      snap.graphs.reserve(residents.size());
      for (const auto& ent : residents) {
        auto g = catalog.try_lookup(ent.graph_fp);
        if (!g) continue;
        persist::GraphRecord<W> gr;
        gr.graph_fp = ent.graph_fp;
        gr.parent_fp = catalog.parent_of(ent.graph_fp);
        gr.pinned = ent.pinned;
        gr.is_default = ent.graph_fp == default_fp;
        gr.graph = std::move(g);
        snap.graphs.push_back(std::move(gr));
        if (auto table = landmarks.lookup(ent.graph_fp)) {
          persist::LandmarkRecord<W> lr;
          lr.graph_fp = ent.graph_fp;
          lr.table = std::move(table);
          snap.landmarks.push_back(std::move(lr));
        }
        for (auto& [key, value] : cache.entries_of_fp(ent.graph_fp)) {
          // Only full-tree entries computed under the CURRENT solver
          // config persist: p2p digests are one-way (the key cannot be
          // reconstructed at load) and another config's trees would be
          // cache-key-dead in a restarted process anyway.
          if (key.config_digest != config_digest) continue;
          if (!value || value->dist.empty()) continue;
          cache_rows.emplace_back(key, value);
        }
      }
    }
    // Distance arrays are copied out here, off the lock.
    snap.cache.reserve(cache_rows.size());
    for (auto& [key, value] : cache_rows) {
      persist::CacheRecord<W> cr;
      cr.graph_fp = key.graph_fp;
      cr.source = key.source;
      cr.config_digest = key.config_digest;
      cr.dist = value->dist;
      snap.cache.push_back(std::move(cr));
    }
    out.graphs = uint32_t(snap.graphs.size());
    out.tables = uint32_t(snap.landmarks.size());
    out.cache_entries = uint32_t(snap.cache.size());
    const persist::StateStore store(state_dir);
    out.path = store.path();
    try {
      const persist::SaveStats st = store.save(snap);
      out.ok = true;
      out.sections = st.sections;
      out.bytes = st.bytes;
      {
        std::lock_guard<std::mutex> lk(m);
        ++state_saves_ok;
      }
      record(FlightKind::kStateSaved, FlightEvent::kNoEngine, out.bytes,
             out.graphs, out.tables + out.cache_entries);
    } catch (const persist::StoreError& e) {
      out.error = std::string(persist::store_error_kind_name(e.kind())) +
                  ": " + e.what();
      std::lock_guard<std::mutex> lk(m);
      ++state_saves_failed;
    }
    return out;
  }

  /// One tenant that survived the verify phase, staged for installation.
  struct RestoredTenant {
    persist::GraphRecord<W> g;
    std::shared_ptr<const LandmarkTable<W>> table;  // verified or null
    bool table_went_cold = false;  // a table existed but flunked its check
    std::vector<std::pair<VertexId, std::shared_ptr<const SsspResult<W>>>>
        cache_rows;  // certified entries
  };

  /// Load + verify + install. The store's checksums only prove the bytes
  /// round-tripped; this path proves the DATA is true before any of it can
  /// serve: fingerprints recomputed over the decoded CSR, one full
  /// landmark row per tenant recomputed with Dijkstra and compared
  /// bit-for-bit, every cache entry pushed through the O(E) exactness
  /// certificate. Whatever fails is dropped, counted, and replaced by a
  /// typed cold rebuild — never served.
  RestoreOutcome restore_state(const std::string& state_dir) {
    RestoreOutcome out;
    const persist::StateStore store(state_dir);
    if (!store.exists()) return out;  // cold start, not an error
    out.store_found = true;

    WallTimer t_load;
    persist::LoadResult<W> loaded;
    try {
      loaded = store.template load<W>();
    } catch (const persist::StoreError& e) {
      // Whole-store failure: unusable prologue, version skew, io error.
      // Typed degradation to a fully cold start.
      out.error = std::string(persist::store_error_kind_name(e.kind())) +
                  ": " + e.what();
      out.corrupt_sections = 1;
      out.load_ms = t_load.elapsed_ms();
      {
        std::lock_guard<std::mutex> lk(m);
        ++state_restores_failed;
        ++state_corrupt_sections;
        last_restore_load_ms = out.load_ms;
        last_restore_verify_ms = 0.0;
      }
      record(FlightKind::kStateCorrupt, FlightEvent::kNoEngine,
             uint64_t(e.kind()) + 1, 1);
      ADDS_LOG_WARN("sssp-service: restore: store unusable (%s)",
                    out.error.c_str());
      return out;
    }
    out.ok = true;
    out.load_ms = t_load.elapsed_ms();
    out.sections_total = loaded.sections_total;
    out.corrupt_sections = loaded.corrupt_sections;
    for (const auto& err : loaded.errors)
      ADDS_LOG_WARN("sssp-service: restore: %s", err.c_str());

    // ---- Verify phase (no service lock: pure CPU work vs ground truth).
    WallTimer t_verify;
    std::vector<RestoredTenant> verified;
    std::unordered_map<uint64_t, size_t> by_fp;  // verified graph -> index
    for (auto& gr : loaded.snap.graphs) {
      if (!gr.graph) continue;
      if (graph_fingerprint(*gr.graph) != gr.graph_fp) {
        // The snapshot decoded cleanly but is not the graph it claims to
        // be. Nothing downstream of it is verifiable; the tenant goes
        // cold (the operator republishes from source-of-truth).
        ++out.corrupt_sections;
        ++out.cold_rebuilds;
        record(FlightKind::kColdRebuild, FlightEvent::kNoEngine, gr.graph_fp,
               0);
        ADDS_LOG_WARN(
            "sssp-service: restore: graph %016llx failed fingerprint "
            "recompute — tenant goes cold",
            (unsigned long long)gr.graph_fp);
        continue;
      }
      RestoredTenant rt;
      rt.g = std::move(gr);
      by_fp.emplace(rt.g.graph_fp, verified.size());
      verified.push_back(std::move(rt));
    }
    for (auto& lr : loaded.snap.landmarks) {
      const auto it = by_fp.find(lr.graph_fp);
      if (it == by_fp.end()) {
        // Orphaned table: no verified graph to check it against, so it
        // cannot be trusted. Dropped; if the tenant itself restores some
        // other way its publish schedules a fresh build.
        ADDS_LOG_WARN(
            "sssp-service: restore: dropping landmark table for "
            "unrestored graph %016llx",
            (unsigned long long)lr.graph_fp);
        continue;
      }
      RestoredTenant& rt = verified[it->second];
      const CsrGraph<W>& g = *rt.g.graph;
      bool ok = lr.table != nullptr && lr.table->graph_fp() == lr.graph_fp &&
                lr.table->num_vertices() == g.num_vertices() &&
                lr.table->num_landmarks() > 0;
      if (ok) {
        // Dijkstra spot check: recompute ONE full row and demand bit
        // equality. The row index derives from the fingerprint, so which
        // row gets audited is stable per graph but not guessable as
        // "always row 0" — a corruption in any fixed row is caught for
        // 1/K of graphs, and the corruption-matrix tests cover the rest.
        const uint32_t k = uint32_t(lr.graph_fp % lr.table->num_landmarks());
        const VertexId lm = lr.table->landmarks()[k];
        ok = lm < g.num_vertices();
        if (ok) {
          const SsspResult<W> truth = dijkstra(g, lm);
          ok = std::equal(truth.dist.begin(), truth.dist.end(),
                          lr.table->row(k));
        }
      }
      if (ok) {
        rt.table = std::move(lr.table);
      } else {
        ++out.corrupt_sections;
        rt.table_went_cold = true;
        ADDS_LOG_WARN(
            "sssp-service: restore: landmark table for %016llx failed its "
            "Dijkstra spot check — scheduling cold rebuild",
            (unsigned long long)lr.graph_fp);
      }
    }
    for (auto& cr : loaded.snap.cache) {
      const auto it = by_fp.find(cr.graph_fp);
      if (it == by_fp.end()) continue;  // orphaned — recomputes on demand
      // Another configuration's trees are not corruption, just not OURS:
      // a cache entry reproduces the result of an identical solver config.
      if (cr.config_digest != config_digest) continue;
      RestoredTenant& rt = verified[it->second];
      const CsrGraph<W>& g = *rt.g.graph;
      bool ok = cr.source < g.num_vertices() &&
                cr.dist.size() == g.num_vertices();
      if (ok) ok = verify_repair(g, cr.source, cr.dist).exact;
      if (!ok) {
        // The cold rebuild of a cache entry is implicit: the next query
        // for this source computes it fresh through an engine.
        ++out.corrupt_sections;
        ++out.cold_rebuilds;
        record(FlightKind::kColdRebuild, FlightEvent::kNoEngine, cr.graph_fp,
               2);
        continue;
      }
      auto res = std::make_shared<SsspResult<W>>();
      res->solver = "restored";
      res->dist = std::move(cr.dist);
      rt.cache_rows.emplace_back(
          cr.source,
          std::shared_ptr<const SsspResult<W>>(std::move(res)));
    }
    out.verify_ms = t_verify.elapsed_ms();

    // ---- Install phase (under m): verified artifacts enter service the
    // same way live ones do — publish_locked, registry install, cache
    // insert — so restored tenants are indistinguishable from published
    // ones.
    {
      std::lock_guard<std::mutex> lk(m);
      for (auto& rt : verified) {
        // Table first: publish_locked schedules a cold build only while
        // the registry has NO entry for the fingerprint, so a verified
        // table suppresses the rebuild and a failed/missing one lets the
        // publish schedule it — the typed cold-rebuild path.
        if (rt.table) {
          landmarks.install(rt.g.graph_fp, rt.table);
          ++out.tables_restored;
        }
        publish_locked(rt.g.graph, rt.g.pinned, rt.g.graph_fp);
        if (!rt.table &&
            landmarks.status(rt.g.graph_fp) == LandmarkTableStatus::kBuilding &&
            rt.table_went_cold) {
          ++out.cold_rebuilds;
          record(FlightKind::kColdRebuild, FlightEvent::kNoEngine,
                 rt.g.graph_fp, 1);
        }
        catalog.record_lineage(rt.g.graph_fp, rt.g.parent_fp);
        if (rt.g.is_default) default_fp = rt.g.graph_fp;
        for (auto& [source, res] : rt.cache_rows) {
          cache.insert(CacheKey{rt.g.graph_fp, source, config_digest}, res);
          ++out.cache_restored;
        }
        ++out.graphs_restored;
      }
      ++state_restores_ok;
      state_corrupt_sections += out.corrupt_sections;
      state_cold_rebuilds += out.cold_rebuilds;
      state_graphs_restored += out.graphs_restored;
      state_tables_restored += out.tables_restored;
      state_cache_restored += out.cache_restored;
      last_restore_load_ms = out.load_ms;
      last_restore_verify_ms = out.verify_ms;
    }
    if (out.corrupt_sections > 0)
      record(FlightKind::kStateCorrupt, FlightEvent::kNoEngine, 0,
             uint32_t(out.corrupt_sections));
    record(FlightKind::kStateLoaded, FlightEvent::kNoEngine,
           out.sections_total, out.graphs_restored,
           out.tables_restored + out.cache_restored);
    return out;
  }

  // --- teardown ------------------------------------------------------------

  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(m);
      stopping = true;
    }
    stop_flag.store(true, std::memory_order_release);
    cv.notify_all();
    sup_cv.notify_all();
    rb_cv.notify_all();
    std::lock_guard<std::mutex> jk(join_m);
    if (joined) return;
    if (supervisor_thread.joinable()) supervisor_thread.join();
    if (rebuilder_thread.joinable()) rebuilder_thread.join();
    for (auto& d : dispatchers)
      if (d.joinable()) d.join();
    // Belt-and-braces drain: anything still waiting (its slot quarantined
    // at the wrong moment, or every dispatcher exited first) gets a typed
    // kShutdown instead of a forever-pending future.
    {
      std::lock_guard<std::mutex> lk(m);
      if (!waiting.empty()) {
        const uint32_t n = uint32_t(waiting.size());
        shed_waiting_locked("service shut down while queued",
                            FlightKind::kShutdownDrain);
        record(FlightKind::kShutdownDrain, FlightEvent::kNoEngine, 0, n);
      }
    }
    joined = true;
  }

  ServiceReport report() const {
    std::lock_guard<std::mutex> lk(m);
    ServiceReport rep;
    rep.submitted = submitted;
    rep.completed = completed;
    rep.failed = failed;
    rep.shed = shed;
    rep.cancelled = cancelled;
    rep.deadline_expired = deadline_expired;
    rep.unknown_graph = unknown_graph;
    rep.tenant_quarantined = tenant_quarantined;
    rep.batches = batches;
    rep.batched_queries = batched_queries;
    const CacheStats& cs = cache.stats();
    rep.batch_fills = cs.batch_fills;
    rep.cache_hits = cs.hits;
    rep.cache_misses = cs.misses;
    rep.cache_evictions = cs.evictions;
    rep.cache_invalidations = cs.invalidations;
    rep.cache_entries = cache.size();
    const uint64_t looked = cs.hits + cs.misses;
    rep.cache_hit_rate = looked ? double(cs.hits) / double(looked) : 0.0;
    rep.queue_depth = uint32_t(waiting.size());
    rep.peak_queue_depth = peak_depth;
    rep.engines = uint32_t(engines.size());
    rep.engine_queries = engine_queries;
    rep.engine_busy_ms = engine_busy_ms;
    rep.uptime_ms = uptime.elapsed_ms();
    if (rep.uptime_ms > 0.0 && !engines.empty())
      rep.engine_utilization = std::min(
          1.0, engine_busy_ms / (rep.uptime_ms * double(engines.size())));
    rep.latency = recorder.summary();
    rep.last_health = last_health;
    // Service-wide health is the worst band across tenants — a
    // single-tenant service reads exactly as before.
    rep.health = supervise ? worst_health() : ServiceHealth::kHealthy;
    for (const auto& [fp, t] : tenants)
      rep.health_transitions += t.governor.transitions();
    rep.engines_available = count_available();
    rep.engines_retired = count_retired();
    rep.stale_hits = stale_hits;
    rep.brownout_clamped = brownout_clamped;
    rep.probe_failures = probe_failures_total;
    rep.flight_events = flightrec.recorded();
    rep.engine_status.reserve(sup.size());
    for (const auto& s : sup) {
      EngineStatus es;
      es.state = s.state;
      es.queries = s.queries;
      es.kills = s.kills;
      es.quarantines = s.quarantines;
      es.rebuilds = s.rebuilds;
      es.probe_failures = s.probe_failures;
      es.bound_fp = s.bound_fp;
      es.rebinds = s.rebinds;
      rep.engine_status.push_back(es);
      rep.supervisor_kills += s.kills;
      rep.quarantines += s.quarantines;
      rep.rebuilds += s.rebuilds;
      rep.engine_rebinds += s.rebinds;
    }
    // Tenancy: one row per resident graph, catalog residency joined with
    // this service's bulkhead state and the cache's per-fp slice.
    const auto residents = catalog.entries();
    const CatalogStats cat = catalog.stats();
    rep.catalog_residents = residents.size();
    rep.catalog_publishes = cat.publishes;
    rep.catalog_retires = cat.retires;
    rep.catalog_evictions = cat.evictions;
    rep.deltas_applied = deltas_applied;
    rep.repairs_scheduled = repairs_scheduled;
    rep.repairs_ok = repairs_ok;
    rep.repair_fallbacks = repair_fallbacks;
    rep.delta_stale_hits = delta_stale_hits;
    for (const auto& [cfp, w] : delta_windows) rep.repairs_pending += w.pending;
    rep.landmark_builds_ok = landmark_builds_ok;
    rep.landmark_repairs_ok = landmark_repairs_ok;
    rep.landmark_rebuild_fallbacks = landmark_rebuild_fallbacks;
    rep.landmark_build_failures = landmark_build_failures;
    rep.landmark_unsupported = landmark_unsupported;
    rep.landmark_tables = landmarks.resident_tables();
    rep.landmark_evictions = landmarks.evictions();
    rep.oracle_exact_hits = oracle_exact_hits;
    rep.alt_searches = alt_searches;
    rep.p2p_engine_fallbacks = p2p_engine_fallbacks;
    rep.landmark_builds_pending = uint32_t(landmark_queue.size());
    rep.state_saves_ok = state_saves_ok;
    rep.state_saves_failed = state_saves_failed;
    rep.state_restores_ok = state_restores_ok;
    rep.state_restores_failed = state_restores_failed;
    rep.state_corrupt_sections = state_corrupt_sections;
    rep.state_cold_rebuilds = state_cold_rebuilds;
    rep.state_graphs_restored = state_graphs_restored;
    rep.state_tables_restored = state_tables_restored;
    rep.state_cache_restored = state_cache_restored;
    rep.last_restore_load_ms = last_restore_load_ms;
    rep.last_restore_verify_ms = last_restore_verify_ms;
    rep.tenants.reserve(residents.size());
    for (const auto& ent : residents) {
      TenantStatus ts;
      ts.graph_fp = ent.graph_fp;
      ts.pinned = ent.pinned;
      ts.is_default = ent.graph_fp == default_fp;
      const auto it = tenants.find(ent.graph_fp);
      if (it != tenants.end()) {
        const Tenant& t = it->second;
        ts.health = supervise ? t.governor.state() : ServiceHealth::kHealthy;
        ts.health_transitions = t.governor.transitions();
        ts.breaker = t.breaker.state();
        ts.breaker_failures = t.breaker.consecutive_failures();
        ts.breaker_opens = t.breaker.opens();
        ts.submitted = t.submitted;
        ts.completed = t.completed;
        ts.failed = t.failed;
        ts.shed = t.shed;
        ts.quarantined = t.quarantined;
        ts.stale_hits = t.stale_hits;
        ts.repairs_ok = t.repairs_ok;
        ts.repair_fallbacks = t.repair_fallbacks;
        ts.delta_stale_hits = t.delta_stale_hits;
        ts.oracle_exact_hits = t.oracle_exact_hits;
        ts.alt_searches = t.alt_searches;
        ts.p2p_engine_fallbacks = t.p2p_engine_fallbacks;
        ts.waiting = t.waiting;
      }
      const auto li = landmarks.info(ent.graph_fp);
      ts.oracle_status = li.status;
      ts.oracle_landmarks = li.landmarks;
      if (const auto dw = delta_windows.find(ent.graph_fp);
          dw != delta_windows.end())
        ts.repairs_pending = dw->second.pending;
      const TenantCacheStats tcs = cache.tenant_stats(ent.graph_fp);
      ts.cache_hits = tcs.hits;
      ts.cache_misses = tcs.misses;
      ts.cache_entries = tcs.entries;
      ts.queue_quota = tenant_queue_quota;
      ts.occupancy = tenant_occupancy(ent.graph_fp);
      ts.engine_cap = tenant_engine_cap;
      rep.tenants.push_back(ts);
    }
    return rep;
  }
};

template <WeightType W>
SsspService<W>::SsspService(const ServiceConfig& cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}

template <WeightType W>
SsspService<W>::~SsspService() {
  impl_->shutdown();
}

template <WeightType W>
uint64_t SsspService<W>::set_graph(std::shared_ptr<const CsrGraph<W>> g) {
  ADDS_REQUIRE(g != nullptr, "sssp-service: null graph");
  // The O(V + E) digest runs outside the lock; only the publish is
  // serialized.
  const uint64_t fp = graph_fingerprint(*g);
  impl_->set_graph(std::move(g), fp);
  return fp;
}

template <WeightType W>
uint64_t SsspService<W>::set_graph(CsrGraph<W> g) {
  return set_graph(std::make_shared<const CsrGraph<W>>(std::move(g)));
}

template <WeightType W>
uint64_t SsspService<W>::publish_graph(std::shared_ptr<const CsrGraph<W>> g,
                                       bool pinned) {
  ADDS_REQUIRE(g != nullptr, "sssp-service: null graph");
  const uint64_t fp = graph_fingerprint(*g);
  return impl_->publish(std::move(g), pinned, fp);
}

template <WeightType W>
uint64_t SsspService<W>::publish_graph(CsrGraph<W> g, bool pinned) {
  return publish_graph(std::make_shared<const CsrGraph<W>>(std::move(g)),
                       pinned);
}

template <WeightType W>
bool SsspService<W>::retire_graph(uint64_t graph_fp) {
  return impl_->retire(graph_fp);
}

template <WeightType W>
std::vector<uint64_t> SsspService<W>::resident_graphs() const {
  return impl_->residents();
}

template <WeightType W>
DeltaOutcome SsspService<W>::apply_delta(uint64_t parent_fp,
                                         const GraphDelta<W>& delta) {
  return impl_->apply_delta(parent_fp, delta);
}

template <WeightType W>
std::future<QueryOutcome<W>> SsspService<W>::submit(VertexId source,
                                                    const QueryOptions& q) {
  return impl_->submit(source, q);
}

template <WeightType W>
QueryOutcome<W> SsspService<W>::query(VertexId source, const QueryOptions& q) {
  QueryOutcome<W> out = submit(source, q).get();
  if (out.status != QueryStatus::kOk)
    throw ServiceError(
        out.status,
        "sssp-service: query " + std::to_string(out.query_id) + " " +
            query_status_name(out.status) +
            (out.error.empty() ? "" : (": " + out.error)));
  return out;
}

template <WeightType W>
SaveOutcome SsspService<W>::save(const std::string& state_dir) {
  return impl_->save_state(state_dir);
}

template <WeightType W>
RestoreOutcome SsspService<W>::restore(const std::string& state_dir) {
  return impl_->restore_state(state_dir);
}

template <WeightType W>
ServiceReport SsspService<W>::report() const {
  return impl_->report();
}

template <WeightType W>
std::vector<StampedFlightEvent> SsspService<W>::flight_dump() const {
  return impl_->flightrec.dump();
}

template <WeightType W>
void SsspService<W>::shutdown() {
  impl_->shutdown();
}

template class SsspService<uint32_t>;
template class SsspService<float>;

}  // namespace adds
