#include "service/sssp_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/solver.hpp"
#include "service/result_cache.hpp"
#include "util/timer.hpp"

namespace adds {

const char* query_status_name(QueryStatus s) noexcept {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kOverloaded: return "overloaded";
    case QueryStatus::kDeadlineExpired: return "deadline-expired";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kFailed: return "failed";
    case QueryStatus::kShutdown: return "shutdown";
  }
  return "?";
}

template <WeightType W>
struct SsspService<W>::Impl {
  struct Pending {
    uint64_t id = 0;
    VertexId source = 0;
    QueryOptions q;
    double deadline_ms = 0.0;  // resolved (query override or default)
    double submit_ms = 0.0;    // uptime-clock submit timestamp
    std::shared_ptr<const CsrGraph<W>> graph;  // snapshot at submit
    CacheKey key;
    bool cacheable = false;
    std::promise<QueryOutcome<W>> promise;
  };

  ServiceConfig cfg;
  WallTimer uptime;
  uint64_t config_digest = 0;

  mutable std::mutex m;
  std::condition_variable cv;  // dispatchers park here for work
  std::deque<std::unique_ptr<Pending>> waiting;
  bool stopping = false;
  std::shared_ptr<const CsrGraph<W>> graph;
  uint64_t graph_fp = 0;
  ResultCache<W> cache;
  LatencyRecorder recorder;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_expired = 0;
  uint32_t peak_depth = 0;
  uint64_t engine_queries = 0;
  double engine_busy_ms = 0.0;
  QueueHealth last_health;

  std::vector<std::unique_ptr<HostEngine<W>>> engines;
  std::vector<std::thread> dispatchers;
  std::mutex join_m;
  bool joined = false;

  explicit Impl(const ServiceConfig& c)
      : cfg(c),
        config_digest(options_digest(c.engine)),
        cache(c.cache_entries) {
    ADDS_REQUIRE(cfg.num_engines >= 1, "sssp-service: need at least one engine");
    engines.reserve(cfg.num_engines);
    dispatchers.reserve(cfg.num_engines);
    for (uint32_t i = 0; i < cfg.num_engines; ++i)
      engines.push_back(std::make_unique<HostEngine<W>>(cfg.engine));
    for (uint32_t i = 0; i < cfg.num_engines; ++i)
      dispatchers.emplace_back([this, i] { dispatch_loop(i); });
  }

  /// One dispatcher per engine: pulls admitted queries and runs them on
  /// its warm engine until shutdown drains the queue.
  void dispatch_loop(uint32_t engine_idx) {
    HostEngine<W>& engine = *engines[engine_idx];
    for (;;) {
      std::unique_ptr<Pending> p;
      {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [this] { return stopping || !waiting.empty(); });
        if (waiting.empty()) return;  // stopping && drained
        p = std::move(waiting.front());
        waiting.pop_front();
      }
      run_one(engine, std::move(p));
    }
  }

  void run_one(HostEngine<W>& engine, std::unique_ptr<Pending> p) {
    QueryOutcome<W> out;
    out.query_id = p->id;
    const double start_ms = uptime.elapsed_ms();
    out.queue_ms = start_ms - p->submit_ms;

    const auto charge_engine = [&] {
      std::lock_guard<std::mutex> lk(m);
      engine_busy_ms += uptime.elapsed_ms() - start_ms;
      ++engine_queries;
    };
    const auto finish = [&](QueryStatus st) {
      out.status = st;
      out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
      {
        std::lock_guard<std::mutex> lk(m);
        switch (st) {
          case QueryStatus::kOk:
            ++completed;
            recorder.add(out.latency_ms);
            break;
          case QueryStatus::kFailed: ++failed; break;
          case QueryStatus::kCancelled: ++cancelled; break;
          case QueryStatus::kDeadlineExpired: ++deadline_expired; break;
          case QueryStatus::kOverloaded:
          case QueryStatus::kShutdown: break;  // not produced here
        }
      }
      p->promise.set_value(std::move(out));
    };
    const auto cancelled_now = [&] {
      return p->q.cancel != nullptr &&
             p->q.cancel->load(std::memory_order_acquire);
    };

    // Conditions that already hold after the queue wait are honoured
    // without burning an engine on a result nobody wants.
    if (cancelled_now()) return finish(QueryStatus::kCancelled);
    if (p->deadline_ms > 0.0 && out.queue_ms >= p->deadline_ms)
      return finish(QueryStatus::kDeadlineExpired);

    // A twin query may have completed while this one waited in the
    // admission queue: serve it from the cache instead of burning an
    // engine on a recomputation.
    if (p->cacheable) {
      std::shared_ptr<const SsspResult<W>> v;
      {
        std::lock_guard<std::mutex> lk(m);
        v = cache.lookup(p->key, /*count_miss=*/false);
      }
      if (v) {
        out.result = std::move(v);
        out.cache_hit = true;
        return finish(QueryStatus::kOk);
      }
    }

    QueryControl ctl;
    ctl.cancel = p->q.cancel;
    ctl.deadline_ms =
        p->deadline_ms > 0.0 ? p->deadline_ms - out.queue_ms : 0.0;

    const auto publish_ok = [&](SsspResult<W>&& r) {
      auto sp = std::make_shared<const SsspResult<W>>(std::move(r));
      {
        std::lock_guard<std::mutex> lk(m);
        last_health = sp->health;
        if (p->cacheable) cache.insert(p->key, sp);
      }
      out.result = std::move(sp);
      finish(QueryStatus::kOk);
    };

    try {
      SsspResult<W> r = engine.solve(*p->graph, p->source, ctl);
      charge_engine();
      return publish_ok(std::move(r));
    } catch (const DeadlineError&) {
      charge_engine();
      return finish(QueryStatus::kDeadlineExpired);
    } catch (const Error& e) {
      charge_engine();
      if (cancelled_now()) return finish(QueryStatus::kCancelled);
      if (!cfg.guarded_fallback) {
        out.error = e.what();
        return finish(QueryStatus::kFailed);
      }
      // The warm engine gave up (e.g. a pool wedge beyond governance, or
      // an injected fault): route the query through the guarded one-shot
      // runtime — watchdog, pool-resized retries, engine fallback chain —
      // before declaring failure.
      try {
        EngineConfig ecfg;
        ecfg.adds_host = cfg.engine;
        SsspResult<W> r = run_solver_guarded(SolverKind::kAddsHost, *p->graph,
                                             p->source, ecfg, cfg.resilience);
        return publish_ok(std::move(r));
      } catch (const Error& e2) {
        out.error =
            std::string(e.what()) + "; guarded fallback: " + e2.what();
        return finish(QueryStatus::kFailed);
      }
    }
  }

  std::future<QueryOutcome<W>> submit(VertexId source, const QueryOptions& q) {
    auto p = std::make_unique<Pending>();
    p->source = source;
    p->q = q;
    std::future<QueryOutcome<W>> fut = p->promise.get_future();

    {
      std::unique_lock<std::mutex> lk(m);
      if (stopping) {
        QueryOutcome<W> out;
        out.status = QueryStatus::kShutdown;
        out.error = "service is shut down";
        p->promise.set_value(std::move(out));
        return fut;
      }
      ADDS_REQUIRE(graph != nullptr, "sssp-service: no graph set");
      ADDS_REQUIRE(source < graph->num_vertices(),
                   "sssp-service: source vertex out of range");
      p->id = ++submitted;
      p->submit_ms = uptime.elapsed_ms();
      p->graph = graph;
      p->deadline_ms =
          q.deadline_ms > 0.0 ? q.deadline_ms : cfg.default_deadline_ms;
      p->cacheable = !q.bypass_cache && cache.capacity() > 0;
      p->key = CacheKey{graph_fp, source, config_digest};

      if (p->cacheable) {
        if (auto v = cache.lookup(p->key)) {
          QueryOutcome<W> out;
          out.status = QueryStatus::kOk;
          out.result = std::move(v);
          out.cache_hit = true;
          out.query_id = p->id;
          out.latency_ms = uptime.elapsed_ms() - p->submit_ms;
          ++completed;
          recorder.add(out.latency_ms);
          p->promise.set_value(std::move(out));
          return fut;
        }
      }
      if (waiting.size() >= cfg.max_queue_depth) {
        // Graceful shedding: reject now rather than queue into an
        // unbounded backlog the deadline will kill anyway.
        ++shed;
        QueryOutcome<W> out;
        out.status = QueryStatus::kOverloaded;
        out.query_id = p->id;
        out.error = "admission queue full (max_queue_depth=" +
                    std::to_string(cfg.max_queue_depth) + ")";
        p->promise.set_value(std::move(out));
        return fut;
      }
      waiting.push_back(std::move(p));
      peak_depth = std::max<uint32_t>(peak_depth, uint32_t(waiting.size()));
    }
    cv.notify_one();
    return fut;
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(m);
      stopping = true;
    }
    cv.notify_all();
    std::lock_guard<std::mutex> jk(join_m);
    if (joined) return;
    for (auto& d : dispatchers)
      if (d.joinable()) d.join();
    joined = true;
  }

  ServiceReport report() const {
    std::lock_guard<std::mutex> lk(m);
    ServiceReport rep;
    rep.submitted = submitted;
    rep.completed = completed;
    rep.failed = failed;
    rep.shed = shed;
    rep.cancelled = cancelled;
    rep.deadline_expired = deadline_expired;
    const CacheStats& cs = cache.stats();
    rep.cache_hits = cs.hits;
    rep.cache_misses = cs.misses;
    rep.cache_evictions = cs.evictions;
    rep.cache_invalidations = cs.invalidations;
    rep.cache_entries = cache.size();
    const uint64_t looked = cs.hits + cs.misses;
    rep.cache_hit_rate = looked ? double(cs.hits) / double(looked) : 0.0;
    rep.queue_depth = uint32_t(waiting.size());
    rep.peak_queue_depth = peak_depth;
    rep.engines = uint32_t(engines.size());
    rep.engine_queries = engine_queries;
    rep.engine_busy_ms = engine_busy_ms;
    rep.uptime_ms = uptime.elapsed_ms();
    if (rep.uptime_ms > 0.0 && !engines.empty())
      rep.engine_utilization = std::min(
          1.0, engine_busy_ms / (rep.uptime_ms * double(engines.size())));
    rep.latency = recorder.summary();
    rep.last_health = last_health;
    return rep;
  }
};

template <WeightType W>
SsspService<W>::SsspService(const ServiceConfig& cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}

template <WeightType W>
SsspService<W>::~SsspService() {
  impl_->shutdown();
}

template <WeightType W>
void SsspService<W>::set_graph(std::shared_ptr<const CsrGraph<W>> g) {
  ADDS_REQUIRE(g != nullptr, "sssp-service: null graph");
  // The O(V + E) digest runs outside the lock; only the publish is
  // serialized.
  const uint64_t fp = graph_fingerprint(*g);
  std::lock_guard<std::mutex> lk(impl_->m);
  impl_->graph = std::move(g);
  impl_->graph_fp = fp;
  // Every cached entry keys on the old fingerprint: a lookup could never
  // hit again, so dropping them wholesale only trades dead weight for
  // capacity.
  impl_->cache.invalidate_all();
}

template <WeightType W>
void SsspService<W>::set_graph(CsrGraph<W> g) {
  set_graph(std::make_shared<const CsrGraph<W>>(std::move(g)));
}

template <WeightType W>
std::future<QueryOutcome<W>> SsspService<W>::submit(VertexId source,
                                                    const QueryOptions& q) {
  return impl_->submit(source, q);
}

template <WeightType W>
QueryOutcome<W> SsspService<W>::query(VertexId source, const QueryOptions& q) {
  QueryOutcome<W> out = submit(source, q).get();
  if (out.status != QueryStatus::kOk)
    throw ServiceError(
        out.status,
        "sssp-service: query " + std::to_string(out.query_id) + " " +
            query_status_name(out.status) +
            (out.error.empty() ? "" : (": " + out.error)));
  return out;
}

template <WeightType W>
ServiceReport SsspService<W>::report() const {
  return impl_->report();
}

template <WeightType W>
void SsspService<W>::shutdown() {
  impl_->shutdown();
}

template class SsspService<uint32_t>;
template class SsspService<float>;

}  // namespace adds
