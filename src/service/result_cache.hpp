// LRU result cache for the SSSP query service.
//
// Keyed by (graph fingerprint, source vertex, solver-config digest): a hit
// is only valid if the query would have run the same algorithm over the
// same graph from the same source. Values are shared_ptr<const SsspResult>
// so a hit is O(1) regardless of graph size and the entry can be handed to
// callers while eviction proceeds underneath.
//
// Not thread-safe by itself — the service serializes access under its own
// mutex (cache operations are microseconds; a finer lock would buy
// nothing).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "graph/fingerprint.hpp"
#include "sssp/adds.hpp"

namespace adds {

struct CacheKey {
  uint64_t graph_fp = 0;
  VertexId source = 0;
  uint64_t config_digest = 0;

  bool operator==(const CacheKey& o) const noexcept {
    return graph_fp == o.graph_fp && source == o.source &&
           config_digest == o.config_digest;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const noexcept {
    uint64_t h = k.graph_fp;
    h = fnv1a_bytes(&k.source, sizeof(k.source), h);
    h = fnv1a_bytes(&k.config_digest, sizeof(k.config_digest), h);
    return size_t(h);
  }
};

/// Digest of the AddsHostOptions fields that select *which* result the
/// engine computes or how it schedules it. Worker count and pool sizing do
/// not change distances, but they do change the WorkStats/QueueHealth
/// payload a cached result carries — so they are included: a cache entry
/// reproduces the full result of an identical configuration.
inline uint64_t options_digest(const AddsHostOptions& o) noexcept {
  uint64_t h = kFnvOffset;
  const auto mix = [&h](const auto& v) { h = fnv1a_bytes(&v, sizeof(v), h); };
  mix(o.num_workers);
  mix(o.num_buckets);
  mix(o.delta);
  mix(o.heuristic_c);
  mix(o.dynamic_delta);
  mix(o.chunk_items);
  mix(o.block_words);
  mix(o.pool_blocks);
  mix(o.segment_words);
  mix(o.write_combining);
  mix(o.combine_capacity);
  mix(o.manager_inline_items);
  mix(o.pool_governor);
  return h;
}

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;      // capacity-driven removals
  uint64_t invalidations = 0;  // entries dropped by graph swap / clear
};

template <WeightType W>
class ResultCache {
 public:
  using Value = std::shared_ptr<const SsspResult<W>>;

  /// `capacity` == 0 disables the cache (every lookup misses, inserts
  /// drop).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const noexcept { return capacity_; }
  size_t size() const noexcept { return map_.size(); }
  const CacheStats& stats() const noexcept { return stats_; }

  /// Returns the cached result and promotes the entry to most-recent, or
  /// null on miss. `count_miss=false` is for the service's dequeue-time
  /// re-check: the submit-time lookup already charged that query one miss,
  /// and a second charge would deflate the hit rate.
  Value lookup(const CacheKey& key, bool count_miss = true) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      if (count_miss) ++stats_.misses;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return it->second->value;
  }

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when at capacity.
  void insert(const CacheKey& key, Value value) {
    if (capacity_ == 0) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(Entry{key, std::move(value)});
    map_.emplace(key, lru_.begin());
    ++stats_.insertions;
  }

  /// Drops every entry (graph swap: all fingerprints are stale).
  void invalidate_all() {
    stats_.invalidations += map_.size();
    map_.clear();
    lru_.clear();
  }

  /// Drops only the entries of one graph fingerprint. The brownout stale
  /// window uses this: set_graph keeps the outgoing generation servable
  /// for a bounded time, then the supervisor purges exactly that
  /// generation when the window closes. O(entries); runs off the hot path.
  size_t invalidate_fp(uint64_t graph_fp) {
    size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->key.graph_fp == graph_fp) {
        map_.erase(it->key);
        it = lru_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    stats_.invalidations += dropped;
    return dropped;
  }

 private:
  struct Entry {
    CacheKey key;
    Value value;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<CacheKey, typename std::list<Entry>::iterator,
                     CacheKeyHash>
      map_;
  CacheStats stats_;
};

}  // namespace adds
