// LRU result cache for the SSSP query service.
//
// Keyed by (graph fingerprint, source vertex, solver-config digest): a hit
// is only valid if the query would have run the same algorithm over the
// same graph from the same source. Values are shared_ptr<const SsspResult>
// so a hit is O(1) regardless of graph size and the entry can be handed to
// callers while eviction proceeds underneath.
//
// Not thread-safe by itself — the service serializes access under its own
// mutex (cache operations are microseconds; a finer lock would buy
// nothing).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/fingerprint.hpp"
#include "sssp/adds.hpp"

namespace adds {

struct CacheKey {
  uint64_t graph_fp = 0;
  VertexId source = 0;
  uint64_t config_digest = 0;

  bool operator==(const CacheKey& o) const noexcept {
    return graph_fp == o.graph_fp && source == o.source &&
           config_digest == o.config_digest;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const noexcept {
    uint64_t h = k.graph_fp;
    h = fnv1a_bytes(&k.source, sizeof(k.source), h);
    h = fnv1a_bytes(&k.config_digest, sizeof(k.config_digest), h);
    return size_t(h);
  }
};

/// Digest of the AddsHostOptions fields that select *which* result the
/// engine computes or how it schedules it. Worker count and pool sizing do
/// not change distances, but they do change the WorkStats/QueueHealth
/// payload a cached result carries — so they are included: a cache entry
/// reproduces the full result of an identical configuration.
inline uint64_t options_digest(const AddsHostOptions& o) noexcept {
  uint64_t h = kFnvOffset;
  const auto mix = [&h](const auto& v) { h = fnv1a_bytes(&v, sizeof(v), h); };
  mix(o.num_workers);
  mix(o.num_buckets);
  mix(o.delta);
  mix(o.heuristic_c);
  mix(o.dynamic_delta);
  mix(o.chunk_items);
  mix(o.block_words);
  mix(o.pool_blocks);
  mix(o.segment_words);
  mix(o.write_combining);
  mix(o.combine_capacity);
  mix(o.manager_inline_items);
  mix(o.pool_governor);
  return h;
}

/// Folds a point-to-point target into a config digest. Full-SSSP queries
/// (target == kInvalidVertex) keep the base digest unchanged — existing
/// keys are unaffected — while p2p queries get a tagged, target-specific
/// digest, so a p2p answer can never be served for a full-SSSP query with
/// the same (fingerprint, source) or vice versa.
inline uint64_t p2p_digest(uint64_t base, VertexId target) noexcept {
  if (target == kInvalidVertex) return base;
  constexpr uint8_t kP2pTag = 0xA5;
  uint64_t h = fnv1a_bytes(&kP2pTag, sizeof(kP2pTag), base);
  h = fnv1a_bytes(&target, sizeof(target), h);
  return h;
}

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;      // capacity-driven removals
  uint64_t invalidations = 0;  // entries dropped by graph swap / clear
  uint64_t batch_fills = 0;    // entries inserted via insert_batch passes
};

/// Per-fingerprint (per-tenant) slice of the cache counters, surfaced in
/// ServiceReport::tenants.
struct TenantCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t entries = 0;  // resident entries of this fingerprint right now
};

template <WeightType W>
class ResultCache {
 public:
  using Value = std::shared_ptr<const SsspResult<W>>;

  /// `capacity` == 0 disables the cache (every lookup misses, inserts
  /// drop). `per_fp_cap` bounds how many entries any one graph fingerprint
  /// may hold (tenant-fair eviction: a hot tenant recycles its own LRU
  /// entry instead of evicting other tenants' results); 0 = uncapped.
  explicit ResultCache(size_t capacity, size_t per_fp_cap = 0)
      : capacity_(capacity), per_fp_cap_(per_fp_cap) {}

  size_t capacity() const noexcept { return capacity_; }
  size_t per_fp_cap() const noexcept { return per_fp_cap_; }
  size_t size() const noexcept { return map_.size(); }
  const CacheStats& stats() const noexcept { return stats_; }

  /// Per-fingerprint counters (zeroes for a never-seen fingerprint). Kept
  /// across invalidation — the counters describe tenant traffic, not the
  /// current residency.
  TenantCacheStats tenant_stats(uint64_t graph_fp) const {
    const auto it = by_fp_.find(graph_fp);
    return it != by_fp_.end() ? it->second : TenantCacheStats{};
  }

  /// Returns the cached result and promotes the entry to most-recent, or
  /// null on miss. `count_miss=false` is for the service's dequeue-time
  /// re-check: the submit-time lookup already charged that query one miss,
  /// and a second charge would deflate the hit rate.
  Value lookup(const CacheKey& key, bool count_miss = true) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      if (count_miss) {
        ++stats_.misses;
        ++by_fp_[key.graph_fp].misses;
      }
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    ++by_fp_[key.graph_fp].hits;
    return it->second->value;
  }

  /// Inserts (or refreshes) an entry. A tenant over its per-fingerprint
  /// cap recycles its own least-recently-used entry; a full cache evicts
  /// the global LRU entry.
  void insert(const CacheKey& key, Value value) {
    if (capacity_ == 0) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (per_fp_cap_ > 0 && by_fp_[key.graph_fp].entries >= per_fp_cap_) {
      evict_lru_of_fp(key.graph_fp);
    } else if (map_.size() >= capacity_) {
      erase_entry(std::prev(lru_.end()));
      ++stats_.evictions;
    }
    lru_.push_front(Entry{key, std::move(value)});
    map_.emplace(key, lru_.begin());
    ++by_fp_[key.graph_fp].entries;
    ++stats_.insertions;
  }

  /// Inserts every (key, value) pair of one batched solve in a single
  /// pass. Semantically identical to calling insert() per pair — the point
  /// is bookkeeping and locking discipline: the service takes its mutex
  /// ONCE around this call to fill K lanes' results, instead of K
  /// lock/unlock round-trips, and `batch_fills` counts how many entries
  /// arrived this way (surfaced in ServiceReport::batch_fills).
  void insert_batch(std::vector<std::pair<CacheKey, Value>> entries) {
    if (capacity_ == 0) return;
    for (auto& [key, value] : entries) {
      insert(key, std::move(value));
      ++stats_.batch_fills;
    }
  }

  /// Drops every entry (full reset; per-tenant hit/miss history is kept).
  void invalidate_all() {
    stats_.invalidations += map_.size();
    map_.clear();
    lru_.clear();
    for (auto& [fp, ts] : by_fp_) ts.entries = 0;
  }

  /// Every resident entry of one graph fingerprint, MRU first — the delta
  /// pipeline's repair schedule: each cached (source, parent fp) tree is a
  /// warm-start candidate on the child graph. O(entries), off the hot path.
  std::vector<std::pair<CacheKey, Value>> entries_of_fp(
      uint64_t graph_fp) const {
    std::vector<std::pair<CacheKey, Value>> out;
    for (const Entry& e : lru_)
      if (e.key.graph_fp == graph_fp) out.emplace_back(e.key, e.value);
    return out;
  }

  /// Drops only the entries of one graph fingerprint: a tenant retiring or
  /// being evicted from the catalog takes exactly its own results with it,
  /// and the brownout stale window purges exactly the outgoing generation
  /// when it closes. O(entries); runs off the hot path.
  size_t invalidate_fp(uint64_t graph_fp) {
    size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->key.graph_fp == graph_fp) {
        map_.erase(it->key);
        it = lru_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    const auto fit = by_fp_.find(graph_fp);
    if (fit != by_fp_.end()) fit->second.entries = 0;
    stats_.invalidations += dropped;
    return dropped;
  }

 private:
  struct Entry {
    CacheKey key;
    Value value;
  };
  using LruIter = typename std::list<Entry>::iterator;

  void erase_entry(LruIter it) {
    const auto fit = by_fp_.find(it->key.graph_fp);
    if (fit != by_fp_.end() && fit->second.entries > 0)
      --fit->second.entries;
    map_.erase(it->key);
    lru_.erase(it);
  }

  /// Evicts the least-recently-used entry of `graph_fp` (the per-tenant
  /// cap guarantees one exists when this is called). Scans from the LRU
  /// end; caps are small so the walk is short.
  void evict_lru_of_fp(uint64_t graph_fp) {
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->key.graph_fp == graph_fp) {
        erase_entry(it);
        ++stats_.evictions;
        return;
      }
      if (it == lru_.begin()) return;  // unreachable while counts are right
    }
  }

  size_t capacity_;
  size_t per_fp_cap_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<CacheKey, LruIter, CacheKeyHash> map_;
  std::unordered_map<uint64_t, TenantCacheStats> by_fp_;
  CacheStats stats_;
};

}  // namespace adds
