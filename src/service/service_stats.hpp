// Service-level observability: latency percentiles, queue depth, engine
// utilization and cache effectiveness on one report struct — the serving
// analog of the per-run QueueHealth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "landmark/landmark_oracle.hpp"
#include "service/supervisor.hpp"
#include "sssp/result.hpp"
#include "util/stats.hpp"

namespace adds {

/// Order statistics over the most recent `capacity` samples (a ring — the
/// service reports *recent* latency, not lifetime latency, so a burst of
/// slow queries is visible even after millions of fast ones).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t capacity = 2048)
      : capacity_(std::max<size_t>(1, capacity)) {
    samples_.reserve(capacity_);
  }

  void add(double ms) {
    if (samples_.size() < capacity_) {
      samples_.push_back(ms);
    } else {
      samples_[next_] = ms;
      next_ = (next_ + 1) % capacity_;
    }
    ++total_;
  }

  uint64_t total() const noexcept { return total_; }

  struct Summary {
    uint64_t count = 0;  // lifetime samples (window may be smaller)
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
    double max = 0.0;
  };

  Summary summary() const {
    Summary s;
    s.count = total_;
    if (samples_.empty()) return s;
    std::vector<double> xs = samples_;
    s.p50 = percentile(xs, 50.0);
    s.p90 = percentile(xs, 90.0);
    s.p99 = percentile(xs, 99.0);
    double sum = 0.0, mx = xs.front();
    for (double x : xs) {
      sum += x;
      mx = std::max(mx, x);
    }
    s.mean = sum / double(xs.size());
    s.max = mx;
    return s;
  }

 private:
  size_t capacity_;
  size_t next_ = 0;
  uint64_t total_ = 0;
  std::vector<double> samples_;
};

/// Per-engine supervision snapshot inside ServiceReport. `state ==
/// EngineState::kRetired` is the typed permanently-out signal.
struct EngineStatus {
  EngineState state = EngineState::kIdle;
  uint64_t queries = 0;        // dispatched to this slot
  uint64_t kills = 0;          // supervisor interrupts delivered
  uint64_t quarantines = 0;    // times pulled from service
  uint64_t rebuilds = 0;       // reconstructions completed
  uint32_t probe_failures = 0; // consecutive failed post-rebuild probes
  uint64_t bound_fp = 0;       // tenant this warm engine last solved for
  uint64_t rebinds = 0;        // times the slot switched tenants
};

/// Per-tenant snapshot inside ServiceReport: one row per catalog-resident
/// graph. The isolation invariants read directly off this: a faulted
/// tenant shows health/breaker damage here while every other row stays
/// kHealthy/kClosed with zero sheds.
struct TenantStatus {
  uint64_t graph_fp = 0;
  bool pinned = false;
  bool is_default = false;  // set_graph routes fp-less queries here
  ServiceHealth health = ServiceHealth::kHealthy;
  uint64_t health_transitions = 0;
  BreakerState breaker = BreakerState::kClosed;
  uint32_t breaker_failures = 0;  // consecutive, resets on success
  uint64_t breaker_opens = 0;     // lifetime
  // Admission / completion, this tenant only.
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;         // kOverloaded (quota or tenant shedding)
  uint64_t quarantined = 0;  // kTenantQuarantined (open breaker)
  uint64_t stale_hits = 0;
  // Live-delta lifecycle, this tenant only. A tenant row is keyed by
  // fingerprint, so delta counters accumulate on the CHILD generation
  // (the fingerprint whose answers they protect).
  uint64_t repairs_ok = 0;        // warm repairs that passed the certificate
  uint64_t repair_fallbacks = 0;  // repairs replaced by a cold child solve
  uint64_t delta_stale_hits = 0;  // parent-tree answers served mid-repair
  uint32_t repairs_pending = 0;   // scheduled, not yet finished
  // Landmark oracle, this tenant only: table lifecycle plus how its
  // point-to-point queries were answered.
  LandmarkTableStatus oracle_status = LandmarkTableStatus::kNone;
  uint32_t oracle_landmarks = 0;     // landmarks in the READY table
  uint64_t oracle_exact_hits = 0;    // tight-bound serves, zero dispatch
  uint64_t alt_searches = 0;         // ALT-guided A* serves (no engine)
  uint64_t p2p_engine_fallbacks = 0; // p2p served by a full engine solve
  // Result-cache slice.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  size_t cache_entries = 0;
  // Bulkhead state right now.
  uint32_t waiting = 0;      // queued queries of this tenant
  uint32_t queue_quota = 0;  // max queued (floor(queue_share * depth))
  uint32_t occupancy = 0;    // engine slots held (busy + attributed faults)
  uint32_t engine_cap = 0;   // max slots (floor(engine_share * engines))
};

/// Point-in-time snapshot returned by SsspService::report().
struct ServiceReport {
  // Admission and completion counters.
  uint64_t submitted = 0;
  uint64_t completed = 0;         // kOk results (computed or cached)
  uint64_t failed = 0;            // kFailed
  uint64_t shed = 0;              // kOverloaded (admission queue full)
  uint64_t cancelled = 0;         // kCancelled
  uint64_t deadline_expired = 0;  // kDeadlineExpired
  uint64_t unknown_graph = 0;     // kUnknownGraph (non-resident fp)
  uint64_t tenant_quarantined = 0;  // kTenantQuarantined (open breaker)

  // Batched dispatch (same-graph queue coalescing into one solve_batch).
  uint64_t batches = 0;          // solve_batch dispatches (>= 2 lanes each)
  uint64_t batched_queries = 0;  // queries served through those dispatches
  uint64_t batch_fills = 0;      // cache entries filled by batched solves

  // Result cache effectiveness.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  size_t cache_entries = 0;
  double cache_hit_rate = 0.0;  // hits / (hits + misses), 0 when idle

  // Scheduler state.
  uint32_t queue_depth = 0;       // queries waiting for an engine now
  uint32_t peak_queue_depth = 0;  // high-water mark since construction
  uint32_t engines = 0;
  uint64_t engine_queries = 0;       // queries actually run on an engine
  double engine_busy_ms = 0.0;       // summed engine solve time
  double engine_utilization = 0.0;   // busy / (uptime * engines), [0,1]
  double uptime_ms = 0.0;

  // End-to-end latency of completed queries (submit -> outcome), recent
  // window.
  LatencyRecorder::Summary latency;

  // Pool/queue health of the most recent engine-executed query — the
  // per-run QueueHealth surfaced at service level.
  QueueHealth last_health;

  // Supervision and degradation (all zero / kHealthy / empty when the
  // supervisor is disabled).
  ServiceHealth health = ServiceHealth::kHealthy;
  uint64_t health_transitions = 0;
  uint32_t engines_available = 0;  // kIdle + kBusy right now
  uint32_t engines_retired = 0;    // permanently out (typed kEngineRetired)
  uint64_t supervisor_kills = 0;   // wedged queries interrupted
  uint64_t quarantines = 0;        // slot pulls (all engines, lifetime)
  uint64_t rebuilds = 0;           // engine reconstructions completed
  uint64_t probe_failures = 0;     // failed post-rebuild probes, lifetime
  uint64_t stale_hits = 0;         // brownout bounded-staleness serves
  uint64_t brownout_clamped = 0;   // deadlines clamped by brownout
  uint64_t flight_events = 0;      // lifetime flight-recorder events
  std::vector<EngineStatus> engine_status;  // one entry per engine slot

  // Tenancy (empty / zero with no graphs published).
  std::vector<TenantStatus> tenants;  // one row per resident graph, by fp
  size_t catalog_residents = 0;
  uint64_t catalog_publishes = 0;   // first-time publications
  uint64_t catalog_retires = 0;
  uint64_t catalog_evictions = 0;   // capacity-driven LRU removals
  uint64_t engine_rebinds = 0;      // keyed-binding switches, all slots

  // Live graph deltas (apply_delta pipeline; all zero when never used).
  uint64_t deltas_applied = 0;      // child snapshots published
  uint64_t repairs_scheduled = 0;   // per cached (source, parent fp) tree
  uint64_t repairs_ok = 0;          // certificate-verified warm repairs
  uint64_t repair_fallbacks = 0;    // typed fallback to cold child solves
  uint64_t delta_stale_hits = 0;    // parent answers served during repair
  uint32_t repairs_pending = 0;     // in the rebuilder's queue right now

  // Landmark distance oracle (all zero when disabled or never used).
  uint64_t landmark_builds_ok = 0;       // cold table builds completed
  uint64_t landmark_repairs_ok = 0;      // warm per-lane table repairs
  uint64_t landmark_rebuild_fallbacks = 0;  // failed repairs rebuilt cold
  uint64_t landmark_build_failures = 0;  // builds that failed typed
  uint64_t landmark_unsupported = 0;     // asymmetric graphs declined
  uint64_t landmark_tables = 0;          // READY tables resident now
  uint64_t landmark_evictions = 0;       // LRU table drops, lifetime
  uint64_t oracle_exact_hits = 0;        // tight-bound p2p serves
  uint64_t alt_searches = 0;             // ALT-guided A* p2p serves
  uint64_t p2p_engine_fallbacks = 0;     // p2p through a full engine solve
  uint32_t landmark_builds_pending = 0;  // build/repair tasks queued now

  // ---- Persistence (src/persist/ state store) ----
  uint64_t state_saves_ok = 0;          // StateStore::save published a store
  uint64_t state_saves_failed = 0;      // save threw typed (io / no space)
  uint64_t state_restores_ok = 0;       // restore() served at least the store
  uint64_t state_restores_failed = 0;   // whole-store failures (typed)
  uint64_t state_corrupt_sections = 0;  // sections rejected by checksum/verify
  uint64_t state_cold_rebuilds = 0;     // artifacts rebuilt cold after reject
  uint64_t state_graphs_restored = 0;   // tenants republished from the store
  uint64_t state_tables_restored = 0;   // landmark tables verified + installed
  uint64_t state_cache_restored = 0;    // cache entries certified + reinserted
  double last_restore_load_ms = 0.0;    // read + checksum + decode
  double last_restore_verify_ms = 0.0;  // fingerprints + Dijkstra + certificates
};

}  // namespace adds
