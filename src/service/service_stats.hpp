// Service-level observability: latency percentiles, queue depth, engine
// utilization and cache effectiveness on one report struct — the serving
// analog of the per-run QueueHealth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sssp/result.hpp"
#include "util/stats.hpp"

namespace adds {

/// Order statistics over the most recent `capacity` samples (a ring — the
/// service reports *recent* latency, not lifetime latency, so a burst of
/// slow queries is visible even after millions of fast ones).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t capacity = 2048)
      : capacity_(std::max<size_t>(1, capacity)) {
    samples_.reserve(capacity_);
  }

  void add(double ms) {
    if (samples_.size() < capacity_) {
      samples_.push_back(ms);
    } else {
      samples_[next_] = ms;
      next_ = (next_ + 1) % capacity_;
    }
    ++total_;
  }

  uint64_t total() const noexcept { return total_; }

  struct Summary {
    uint64_t count = 0;  // lifetime samples (window may be smaller)
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
    double max = 0.0;
  };

  Summary summary() const {
    Summary s;
    s.count = total_;
    if (samples_.empty()) return s;
    std::vector<double> xs = samples_;
    s.p50 = percentile(xs, 50.0);
    s.p90 = percentile(xs, 90.0);
    s.p99 = percentile(xs, 99.0);
    double sum = 0.0, mx = xs.front();
    for (double x : xs) {
      sum += x;
      mx = std::max(mx, x);
    }
    s.mean = sum / double(xs.size());
    s.max = mx;
    return s;
  }

 private:
  size_t capacity_;
  size_t next_ = 0;
  uint64_t total_ = 0;
  std::vector<double> samples_;
};

/// Point-in-time snapshot returned by SsspService::report().
struct ServiceReport {
  // Admission and completion counters.
  uint64_t submitted = 0;
  uint64_t completed = 0;         // kOk results (computed or cached)
  uint64_t failed = 0;            // kFailed
  uint64_t shed = 0;              // kOverloaded (admission queue full)
  uint64_t cancelled = 0;         // kCancelled
  uint64_t deadline_expired = 0;  // kDeadlineExpired

  // Result cache effectiveness.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  size_t cache_entries = 0;
  double cache_hit_rate = 0.0;  // hits / (hits + misses), 0 when idle

  // Scheduler state.
  uint32_t queue_depth = 0;       // queries waiting for an engine now
  uint32_t peak_queue_depth = 0;  // high-water mark since construction
  uint32_t engines = 0;
  uint64_t engine_queries = 0;       // queries actually run on an engine
  double engine_busy_ms = 0.0;       // summed engine solve time
  double engine_utilization = 0.0;   // busy / (uptime * engines), [0,1]
  double uptime_ms = 0.0;

  // End-to-end latency of completed queries (submit -> outcome), recent
  // window.
  LatencyRecorder::Summary latency;

  // Pool/queue health of the most recent engine-executed query — the
  // per-run QueueHealth surfaced at service level.
  QueueHealth last_health;
};

}  // namespace adds
