// SsspService — a long-lived SSSP query service over a pool of warm
// HostEngines (the tentpole of the serving layer).
//
// Architecture:
//
//   submit(source) ──▶ admission queue (bounded) ──▶ dispatcher threads
//                        │  full → shed kOverloaded     (one per engine)
//                        │                                  │
//                        └── result cache (LRU) ◀── warm HostEngine solve
//
//   * Admission control: the waiting queue is bounded
//     (ServiceConfig::max_queue_depth); a submit that finds it full is shed
//     immediately with QueryStatus::kOverloaded instead of queueing into an
//     unbounded backlog — the service degrades by rejecting, never by
//     growing latency without bound.
//   * Warm engines: each dispatcher owns one HostEngine whose worker
//     threads and block pool persist across queries (src/sssp/
//     host_engine.hpp); a query pays relaxation work, not thread spawns or
//     slab allocation.
//   * Result cache: LRU keyed by (graph fingerprint, source, solver-config
//     digest); invalidated wholesale on set_graph(). Hits are served at
//     submit time without touching an engine.
//   * Per-query deadline and cancel ride the engine's QueryControl; an
//     engine failure can fall back to the guarded one-shot runtime
//     (core/resilience.hpp) when ServiceConfig::guarded_fallback is on.
//
// Multi-tenancy (service/graph_catalog.hpp): every published graph is a
// tenant, keyed by fingerprint. QueryOptions::graph_fp routes a query to
// its tenant (0 = the set_graph default). Fault containment is per tenant:
// each tenant has its own admission quota (a bounded share of the queue),
// its own HealthGovernor (a wedging tenant browns out alone; the report's
// service-wide `health` is the worst band across tenants), a circuit
// breaker (repeated failures open it — typed kTenantQuarantined — with
// automatic half-open retry after cooldown) and a bounded engine share
// (busy slots plus slots its queries poisoned), so no tenant can take the
// whole fleet down. Engines carry a keyed binding to the tenant they last
// solved for; dispatch rebinds an idle engine on demand (cheap: the warm
// queue rewinds via WorkQueue::reset).
//
// Graph snapshots: publish/set_graph store shared_ptrs; every query
// captures the snapshot current at submit time, so a swap, retire or
// eviction mid-flight never pulls the graph out from under a running
// engine.
//
// All public methods are thread-safe.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/resilience.hpp"
#include "graph/csr_graph.hpp"
#include "graph/delta.hpp"
#include "landmark/landmark_oracle.hpp"
#include "service/graph_catalog.hpp"
#include "service/service_stats.hpp"
#include "sssp/host_engine.hpp"

namespace adds {

enum class QueryStatus : uint8_t {
  kOk = 0,
  kOverloaded,       // shed at admission: queue full
  kDeadlineExpired,  // deadline elapsed (in queue or mid-solve)
  kCancelled,        // caller's cancel token fired
  kFailed,           // engine (and fallback, if enabled) failed
  kShutdown,         // submitted after shutdown()
  kUnknownGraph,     // QueryOptions::graph_fp is not catalog-resident
  kTenantQuarantined,  // the tenant's circuit breaker is open
};

const char* query_status_name(QueryStatus s) noexcept;

/// Typed error thrown by the synchronous query() for any non-kOk outcome,
/// so callers can switch on status() instead of parsing what().
class ServiceError : public Error {
 public:
  ServiceError(QueryStatus status, const std::string& what)
      : Error(what), status_(status) {}
  QueryStatus status() const noexcept { return status_; }

 private:
  QueryStatus status_;
};

/// Live-delta repair policy (SsspService::apply_delta).
struct DeltaConfig {
  /// Wall-clock budget per warm repair on the rebuilder; an expired or
  /// wedged repair falls back typed to a cold solve on the child graph.
  double repair_deadline_ms = 2000.0;
  /// Bounded-staleness window per delta: while repairs for a child
  /// generation are in flight (and this budget has not elapsed), a cache
  /// miss on the child serves the parent's cached tree as a typed stale
  /// answer (QueryOutcome::stale with the parent's fingerprint) instead of
  /// recomputing. 0 disables stale serving — misses compute cold.
  double stale_serve_ms = 250.0;
  /// Run the O(E) exactness certificate (verify_repair) on every repaired
  /// tree before caching it. A failed certificate is a repair failure
  /// (typed fallback); disabling trades the check's cost for trust in the
  /// plan. Keep on unless profiling says otherwise.
  bool verify = true;
};

struct ServiceConfig {
  /// Warm engines == dispatcher threads == concurrent queries in flight.
  uint32_t num_engines = 2;
  /// Admission bound: queries waiting for an engine beyond the ones in
  /// flight. A full queue sheds new submits with kOverloaded.
  uint32_t max_queue_depth = 64;
  /// LRU result-cache entries; 0 disables caching.
  size_t cache_entries = 128;
  /// Default per-query wall-clock budget; 0 = unbounded. Overridable per
  /// query.
  double default_deadline_ms = 0.0;
  /// Solver configuration shared by every engine (also part of the cache
  /// key via options_digest).
  AddsHostOptions engine;
  /// Queue coalescing: when a dispatcher picks a query and finds more
  /// queries for the SAME graph fingerprint waiting, it folds up to this
  /// many distinct sources into one HostEngine::solve_batch call — K
  /// queries pay the traversal's fixed scheduling costs once
  /// (docs/SERVICE.md §"Batched dispatch"). Clamped to kMaxLanes;
  /// 1 disables coalescing. Repeated sources within a batch share one
  /// lane, but total members per dispatch are also capped here so a
  /// burst spreads across the pool instead of riding one engine. The
  /// batch deadline is the minimum over its members; a member's cancel
  /// detaches only its lane (or resolves at fan-out when the lane is
  /// shared). Batches do not use the guarded fallback.
  uint32_t max_batch_lanes = 8;
  /// On engine failure, retry the query through run_solver_guarded
  /// (watchdog + resize + fallback chain) before reporting kFailed.
  /// Suspended while the service is in brownout or worse.
  bool guarded_fallback = true;
  /// Policy for that guarded retry.
  ResiliencePolicy resilience;
  /// Self-healing: engine supervision, brownout degradation and the
  /// flight recorder (service/supervisor.hpp).
  SupervisorConfig supervisor;
  /// Multi-tenant bulkheads: per-tenant queue/engine shares, the circuit
  /// breaker and catalog/cache residency bounds (service/supervisor.hpp).
  /// Defaults are single-tenant transparent.
  TenantPolicy tenant;
  /// Live graph deltas: repair budget, stale window, verification.
  DeltaConfig delta;
  /// Landmark distance oracle: per-tenant ALT tables built on the
  /// rebuilder at publish time, serving point-to-point queries
  /// (QueryOptions::target) without engine dispatch
  /// (landmark/landmark_oracle.hpp).
  LandmarkConfig landmark;
};

struct QueryOptions {
  /// Per-query deadline override; 0 uses ServiceConfig::default_deadline_ms.
  double deadline_ms = 0.0;
  /// Optional cancel token, observed in-queue and mid-solve. Must outlive
  /// the query's completion.
  const std::atomic<bool>* cancel = nullptr;
  /// Skip cache lookup and insertion for this query.
  bool bypass_cache = false;
  /// Target graph: a fingerprint returned by publish_graph()/set_graph().
  /// 0 routes to the default tenant (the last set_graph). A non-resident
  /// fingerprint resolves typed kUnknownGraph.
  uint64_t graph_fp = 0;
  /// Point-to-point target vertex. kInvalidVertex (the default) keeps the
  /// query a full single-source solve. A real target routes through the
  /// tenant's landmark oracle first: tight triangle-inequality bounds
  /// answer with zero engine dispatch, otherwise an ALT-guided A* runs on
  /// the submitting thread, and with no usable table the query falls
  /// through to normal admission (a full solve; the target's distance is
  /// read off the result). The outcome's p2p_* fields say which happened.
  VertexId target = kInvalidVertex;
};

template <WeightType W>
struct QueryOutcome {
  QueryStatus status = QueryStatus::kFailed;
  /// The distances (and full run accounting); non-null iff status == kOk,
  /// EXCEPT point-to-point queries served by the landmark layer
  /// (p2p_serve == kOracleExact or kAltSearch), which answer from the
  /// p2p_* fields alone without a full distance array. Shared with the
  /// cache — treat as immutable.
  std::shared_ptr<const SsspResult<W>> result;
  /// How a point-to-point query (QueryOptions::target) was answered;
  /// kNone for full single-source queries.
  P2pServe p2p_serve = P2pServe::kNone;
  /// Valid iff status == kOk and p2p_serve != kNone: whether the target
  /// is reachable from the source, and the exact distance when it is.
  /// Every serve class is exact for its generation — bounds are never
  /// reported as distances unless tight.
  bool p2p_reachable = false;
  DistT<W> p2p_distance{};
  bool cache_hit = false;
  /// Brownout bounded-staleness serve: the result belongs to the previous
  /// graph generation (its fingerprint is in graph_fp). Always false for
  /// engine-computed and same-generation cached results.
  bool stale = false;
  /// Fingerprint of the graph this result was computed over. For fresh
  /// results this equals the fingerprint current at submit; for stale
  /// serves it is the previous generation's.
  uint64_t graph_fp = 0;
  uint64_t query_id = 0;
  double latency_ms = 0.0;  // submit -> outcome
  double queue_ms = 0.0;    // time spent waiting for an engine
  std::string error;        // diagnostic for kFailed
};

/// What SsspService::save reports back to the operator.
struct SaveOutcome {
  bool ok = false;         // the store was atomically published
  std::string path;        // final store path (<state_dir>/state.adds)
  uint64_t sections = 0;   // sections written (graphs + tables + cache)
  uint64_t bytes = 0;      // store size on disk
  uint32_t graphs = 0;     // tenant snapshots saved
  uint32_t tables = 0;     // landmark tables saved
  uint32_t cache_entries = 0;  // full-tree cache entries saved
  std::string error;       // diagnostic when !ok (typed StoreError text)
};

/// What SsspService::restore reports back to the operator. The invariant
/// this struct accounts for: recovered state is VERIFIED or REBUILT — the
/// store is a cache of truth, never a source of it. Every artifact that
/// fails its check (checksum, recomputed fingerprint, Dijkstra spot check,
/// exactness certificate) is counted in corrupt_sections and replaced by a
/// typed cold rebuild, never served.
struct RestoreOutcome {
  bool store_found = false;    // a store file existed at state_dir
  bool ok = false;             // the store loaded (even if partly corrupt)
  uint32_t graphs_restored = 0;      // tenants republished from the store
  uint32_t tables_restored = 0;      // landmark tables verified + installed
  uint32_t cache_restored = 0;       // cache entries certified + reinserted
  uint64_t sections_total = 0;       // sections the store header declared
  uint64_t corrupt_sections = 0;     // sections rejected (checksum or verify)
  uint32_t cold_rebuilds = 0;        // artifacts scheduled for cold rebuild
  double load_ms = 0.0;        // read + checksum + decode
  double verify_ms = 0.0;      // fingerprints + Dijkstra + certificates
  std::string error;           // diagnostic for a whole-store failure
};

/// What SsspService::apply_delta reports back to the operator.
struct DeltaOutcome {
  uint64_t parent_fp = 0;
  uint64_t child_fp = 0;  // == parent_fp when the delta was a no-op
  bool unchanged = false;
  bool was_default = false;  // default routing moved to the child
  uint32_t repairs_scheduled = 0;  // warm repairs queued on the rebuilder
  DeltaStats stats;
};

template <WeightType W>
class SsspService {
 public:
  explicit SsspService(const ServiceConfig& cfg = {});
  ~SsspService();  // implies shutdown()

  SsspService(const SsspService&) = delete;
  SsspService& operator=(const SsspService&) = delete;

  /// Publishes `g` as the DEFAULT tenant: sugar for publish_graph(pinned)
  /// plus default routing for fp-less queries. The previous default is
  /// unpinned but stays catalog-resident — its cached results remain
  /// servable to queries that target its fingerprint explicitly (and, in
  /// brownout, through the bounded stale window). In-flight queries keep
  /// the snapshot they captured. Returns the new default's fingerprint.
  uint64_t set_graph(std::shared_ptr<const CsrGraph<W>> g);
  uint64_t set_graph(CsrGraph<W> g);

  /// Makes `g` catalog-resident under its content fingerprint and returns
  /// that fingerprint (the tenant key for QueryOptions::graph_fp). Over
  /// catalog capacity the LRU unpinned tenant is evicted (its cache
  /// entries dropped, its bulkhead state torn down); throws
  /// CatalogError(kCatalogFull) when every resident is pinned.
  uint64_t publish_graph(std::shared_ptr<const CsrGraph<W>> g,
                         bool pinned = false);
  uint64_t publish_graph(CsrGraph<W> g, bool pinned = false);

  /// Applies a live delta to the tenant under `parent_fp` (0 = the default
  /// tenant): the catalog publishes the child snapshot pinned under its own
  /// fingerprint with a recorded lineage edge, and every cached (source,
  /// parent fp) tree is scheduled for warm-start repair on the rebuilder
  /// thread. While repairs run (bounded by DeltaConfig::stale_serve_ms), a
  /// cache miss on the child serves the parent's cached tree as a typed
  /// bounded-stale answer; a repair that fails, wedges past its deadline,
  /// or flunks the exactness certificate falls back typed to a cold solve
  /// on the child — counted in ServiceReport::repair_fallbacks, never
  /// silent. Once every repair settles the parent is retired (in-flight
  /// queries keep their snapshots) and its cache entries are invalidated,
  /// so no pre-patch tree can be served under the child's fingerprint. If
  /// the parent was the default tenant the default moves to the child.
  /// Throws CatalogError(kUnknownGraph) for a non-resident parent and
  /// adds::Error for a malformed delta.
  DeltaOutcome apply_delta(uint64_t parent_fp, const GraphDelta<W>& delta);

  /// Removes a tenant: new lookups of `graph_fp` resolve kUnknownGraph,
  /// its cached results and queued queries are dropped, engine bindings
  /// released. In-flight queries finish on the snapshot they hold — the
  /// catalog never frees a referenced snapshot. Returns false when the
  /// fingerprint was not resident.
  bool retire_graph(uint64_t graph_fp);

  /// Fingerprints of every catalog-resident graph (MRU first).
  std::vector<uint64_t> resident_graphs() const;

  /// Asynchronous query. Never throws for per-query conditions: shedding,
  /// deadline, cancel and failure all arrive as the future's
  /// QueryOutcome::status. Throws adds::Error only for misuse (no graph
  /// set, source out of range).
  std::future<QueryOutcome<W>> submit(VertexId source,
                                      const QueryOptions& q = {});

  /// Synchronous convenience: submit + wait; throws ServiceError for any
  /// non-kOk status.
  QueryOutcome<W> query(VertexId source, const QueryOptions& q = {});

  /// Persists the serving state to `<state_dir>/state.adds` via the
  /// checksummed StateStore (src/persist/): every catalog-resident tenant
  /// snapshot (with pin, default routing and lineage), every READY
  /// landmark table, and every full-tree result-cache entry computed under
  /// the CURRENT solver config. The write is atomic (temp file + rename):
  /// a crash mid-save leaves the previous store intact, and a torn write
  /// is detectable by construction at load. Never throws — failures come
  /// back typed in SaveOutcome::error and ServiceReport::state_saves_failed.
  SaveOutcome save(const std::string& state_dir);

  /// Loads `<state_dir>/state.adds` and REVERIFIES everything before
  /// serving it: graph fingerprints are recomputed over the decoded CSR,
  /// landmark tables get a Dijkstra spot check of one full row per tenant,
  /// cache entries must pass the O(E) exactness certificate
  /// (verify_repair). Anything that fails is dropped, counted in
  /// RestoreOutcome::corrupt_sections, and replaced by a typed cold
  /// rebuild (flight kColdRebuild) — a corrupt store degrades startup
  /// latency, never answers. Call before publishing graphs by other means;
  /// restored tenants behave exactly like publish_graph'd ones. Never
  /// throws; whole-store failures come back in RestoreOutcome::error.
  RestoreOutcome restore(const std::string& state_dir);

  /// Point-in-time service statistics.
  ServiceReport report() const;

  /// Snapshot of the flight recorder (oldest surviving event first).
  /// Cheap enough for a periodic scrape; primarily for postmortems —
  /// format with format_flight_event().
  std::vector<StampedFlightEvent> flight_dump() const;

  /// Stops admission (subsequent submits report kShutdown), completes every
  /// already-admitted query, then stops the dispatchers. Idempotent.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

extern template class SsspService<uint32_t>;
extern template class SsspService<float>;

}  // namespace adds
