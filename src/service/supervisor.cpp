#include "service/supervisor.hpp"

#include <cstdio>

namespace adds {

const char* service_health_name(ServiceHealth h) noexcept {
  switch (h) {
    case ServiceHealth::kHealthy: return "healthy";
    case ServiceHealth::kBrownout: return "brownout";
    case ServiceHealth::kShedding: return "shedding";
  }
  return "?";
}

const char* engine_state_name(EngineState s) noexcept {
  switch (s) {
    case EngineState::kIdle: return "idle";
    case EngineState::kBusy: return "busy";
    case EngineState::kQuarantined: return "quarantined";
    case EngineState::kRebuilding: return "rebuilding";
    case EngineState::kRetired: return "retired";
  }
  return "?";
}

const char* breaker_state_name(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

bool HealthGovernor::update(const HealthSignals& s) noexcept {
  ServiceHealth next;
  const bool fleet_degraded = s.engines_available < s.engines_in_fleet;
  const bool p99_over = cfg_.brownout_p99_ms > 0.0 &&
                        s.p99_ms > cfg_.brownout_p99_ms;
  if (s.engines_available == 0) {
    next = ServiceHealth::kShedding;
  } else if (state_ == ServiceHealth::kShedding) {
    // Capacity just returned: always pass through brownout so the backlog
    // drains under degraded rules before the service claims healthy.
    next = ServiceHealth::kBrownout;
  } else if (fleet_degraded || p99_over || s.load >= cfg_.brownout_enter_load) {
    next = ServiceHealth::kBrownout;
  } else if (state_ == ServiceHealth::kBrownout &&
             s.load > cfg_.brownout_exit_load) {
    next = ServiceHealth::kBrownout;  // hysteresis: hold until drained
  } else {
    next = ServiceHealth::kHealthy;
  }
  if (next == state_) return false;
  state_ = next;
  ++transitions_;
  return true;
}

bool beacon_wedged(EngineSupervision& slot, double now_ms,
                   double wedge_ms) noexcept {
  const uint64_t pulse = slot.beacon.pulse.load(std::memory_order_relaxed);
  if (pulse != slot.pulse_seen) {
    slot.pulse_seen = pulse;
    slot.last_pulse_ms = now_ms;
    return false;
  }
  // No pulse since the last look. The reference point is the later of
  // "went busy" and "last pulse" so a slot that was dispatched moments ago
  // is not judged by a stale timestamp from its previous query.
  const double quiet_since =
      slot.last_pulse_ms > slot.busy_since_ms ? slot.last_pulse_ms
                                              : slot.busy_since_ms;
  return now_ms - quiet_since > wedge_ms;
}

const char* flight_kind_name(FlightKind k) noexcept {
  switch (k) {
    case FlightKind::kQueryAdmit: return "query-admit";
    case FlightKind::kQueryCacheHit: return "query-cache-hit";
    case FlightKind::kQueryStaleHit: return "query-stale-hit";
    case FlightKind::kQueryShed: return "query-shed";
    case FlightKind::kQueryDone: return "query-done";
    case FlightKind::kQueryFailed: return "query-failed";
    case FlightKind::kQueryDeadline: return "query-deadline";
    case FlightKind::kQueryCancelled: return "query-cancelled";
    case FlightKind::kEngineWedged: return "engine-wedged";
    case FlightKind::kEngineQuarantined: return "engine-quarantined";
    case FlightKind::kEngineRebuilt: return "engine-rebuilt";
    case FlightKind::kEngineRecovered: return "engine-recovered";
    case FlightKind::kEngineProbeFailed: return "engine-probe-failed";
    case FlightKind::kEngineRetired: return "engine-retired";
    case FlightKind::kHealthTransition: return "health-transition";
    case FlightKind::kGraphSwap: return "graph-swap";
    case FlightKind::kStaleWindowExpired: return "stale-window-expired";
    case FlightKind::kFaultObserved: return "fault-observed";
    case FlightKind::kShutdownDrain: return "shutdown-drain";
    case FlightKind::kGraphPublished: return "graph-published";
    case FlightKind::kGraphRetired: return "graph-retired";
    case FlightKind::kGraphEvicted: return "graph-evicted";
    case FlightKind::kBreakerOpen: return "breaker-open";
    case FlightKind::kBreakerHalfOpen: return "breaker-half-open";
    case FlightKind::kBreakerClosed: return "breaker-closed";
    case FlightKind::kQueryQuarantined: return "query-quarantined";
    case FlightKind::kTenantShed: return "tenant-shed";
    case FlightKind::kTenantHealth: return "tenant-health";
    case FlightKind::kEngineRebound: return "engine-rebound";
    case FlightKind::kUnknownGraph: return "unknown-graph";
    case FlightKind::kDeltaPublished: return "delta-published";
    case FlightKind::kRepairStart: return "repair-start";
    case FlightKind::kRepairDone: return "repair-done";
    case FlightKind::kRepairFallback: return "repair-fallback";
    case FlightKind::kTableBuildStart: return "table-build-start";
    case FlightKind::kTableBuilt: return "table-built";
    case FlightKind::kTableRepaired: return "table-repaired";
    case FlightKind::kTableRebuildFallback: return "table-rebuild-fallback";
    case FlightKind::kTableBuildFailed: return "table-build-failed";
    case FlightKind::kOracleServe: return "oracle-serve";
    case FlightKind::kStateSaved: return "state-saved";
    case FlightKind::kStateLoaded: return "state-loaded";
    case FlightKind::kStateCorrupt: return "state-corrupt";
    case FlightKind::kColdRebuild: return "cold-rebuild";
  }
  return "?";
}

std::string format_flight_event(const StampedFlightEvent& e) {
  char buf[192];
  const FlightKind kind = FlightKind(e.ev.kind);
  int n = std::snprintf(buf, sizeof(buf), "#%llu +%.3fms ",
                        (unsigned long long)e.seq, double(e.ev.t_ms));
  if (e.ev.engine != FlightEvent::kNoEngine)
    n += std::snprintf(buf + n, sizeof(buf) - size_t(n), "engine %u ",
                       unsigned(e.ev.engine));
  switch (kind) {
    case FlightKind::kHealthTransition:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "health %s -> %s (available=%u)",
                    service_health_name(ServiceHealth(e.ev.a >> 8)),
                    service_health_name(ServiceHealth(e.ev.a & 0xff)),
                    e.ev.c);
      break;
    case FlightKind::kGraphSwap:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "graph-swap fp=%016llx stale-window=%ums",
                    (unsigned long long)e.ev.b, e.ev.c);
      break;
    case FlightKind::kStaleWindowExpired:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "stale-window-expired fp=%016llx dropped=%u",
                    (unsigned long long)e.ev.b, e.ev.a);
      break;
    case FlightKind::kQueryDone:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "query-done q=%llu source=%u latency=%.3fms",
                    (unsigned long long)e.ev.b, e.ev.a,
                    double(e.ev.c) / 1000.0);
      break;
    case FlightKind::kEngineWedged:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "engine-wedged q=%llu pulse-age=%ums",
                    (unsigned long long)e.ev.b, e.ev.a);
      break;
    case FlightKind::kGraphPublished:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "graph-published fp=%016llx residents=%u pinned=%u",
                    (unsigned long long)e.ev.b, e.ev.a, e.ev.c);
      break;
    case FlightKind::kGraphRetired:
    case FlightKind::kGraphEvicted:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "%s fp=%016llx cache-dropped=%u",
                    flight_kind_name(kind), (unsigned long long)e.ev.b,
                    e.ev.a);
      break;
    case FlightKind::kBreakerOpen:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "breaker-open fp=%016llx failures=%u",
                    (unsigned long long)e.ev.b, e.ev.a);
      break;
    case FlightKind::kBreakerHalfOpen:
    case FlightKind::kBreakerClosed:
      std::snprintf(buf + n, sizeof(buf) - size_t(n), "%s fp=%016llx",
                    flight_kind_name(kind), (unsigned long long)e.ev.b);
      break;
    case FlightKind::kTenantHealth:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "tenant-health fp=%016llx %s -> %s",
                    (unsigned long long)e.ev.b,
                    service_health_name(ServiceHealth(e.ev.a >> 8)),
                    service_health_name(ServiceHealth(e.ev.a & 0xff)));
      break;
    case FlightKind::kEngineRebound:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "engine-rebound fp=%016llx", (unsigned long long)e.ev.b);
      break;
    case FlightKind::kDeltaPublished:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "delta-published child=%016llx repairs=%u changes=%u",
                    (unsigned long long)e.ev.b, e.ev.a, e.ev.c);
      break;
    case FlightKind::kRepairStart:
    case FlightKind::kRepairDone:
    case FlightKind::kRepairFallback:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "%s child=%016llx source=%u", flight_kind_name(kind),
                    (unsigned long long)e.ev.b, e.ev.a);
      break;
    case FlightKind::kTableBuilt:
    case FlightKind::kTableRepaired:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "%s fp=%016llx landmarks=%u build=%ums",
                    flight_kind_name(kind), (unsigned long long)e.ev.b,
                    e.ev.a, e.ev.c);
      break;
    case FlightKind::kTableBuildStart:
    case FlightKind::kTableRebuildFallback:
    case FlightKind::kTableBuildFailed:
      std::snprintf(buf + n, sizeof(buf) - size_t(n), "%s fp=%016llx a=%u",
                    flight_kind_name(kind), (unsigned long long)e.ev.b,
                    e.ev.a);
      break;
    case FlightKind::kOracleServe:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "oracle-serve q=%llu source=%u serve=%u",
                    (unsigned long long)e.ev.b, e.ev.a, e.ev.c);
      break;
    case FlightKind::kStateSaved:
    case FlightKind::kStateLoaded:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "%s graphs=%u tables+cache=%u b=%llu",
                    flight_kind_name(kind), e.ev.a, e.ev.c,
                    (unsigned long long)e.ev.b);
      break;
    case FlightKind::kStateCorrupt:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "state-corrupt sections=%u error-kind=%llu", e.ev.a,
                    (unsigned long long)e.ev.b);
      break;
    case FlightKind::kColdRebuild:
      std::snprintf(buf + n, sizeof(buf) - size_t(n),
                    "cold-rebuild fp=%016llx what=%u",
                    (unsigned long long)e.ev.b, e.ev.a);
      break;
    default:
      std::snprintf(buf + n, sizeof(buf) - size_t(n), "%s a=%u c=%u b=%llu",
                    flight_kind_name(kind), e.ev.a, e.ev.c,
                    (unsigned long long)e.ev.b);
      break;
  }
  return std::string(buf);
}

}  // namespace adds
