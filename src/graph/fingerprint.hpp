// Structural graph fingerprints for cache keys.
//
// The query service caches SSSP results keyed by (graph, source, solver
// config); the graph component is a 64-bit FNV-1a digest over the CSR
// arrays. Collisions would silently serve a wrong cached result, so the
// full topology and every weight byte go into the hash — O(V + E), paid
// once per set_graph(), never per query.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"

namespace adds {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t fnv1a_bytes(const void* data, size_t n,
                            uint64_t h = kFnvOffset) noexcept {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Order-sensitive digest of the CSR structure and weights. Two graphs
/// with equal fingerprints are treated as identical by the result cache.
template <WeightType W>
uint64_t graph_fingerprint(const CsrGraph<W>& g) noexcept {
  uint64_t h = kFnvOffset;
  const uint64_t nv = g.num_vertices();
  const uint64_t ne = g.num_edges();
  h = fnv1a_bytes(&nv, sizeof(nv), h);
  h = fnv1a_bytes(&ne, sizeof(ne), h);
  h = fnv1a_bytes(g.offsets().data(),
                  g.offsets().size() * sizeof(g.offsets()[0]), h);
  h = fnv1a_bytes(g.targets().data(),
                  g.targets().size() * sizeof(g.targets()[0]), h);
  h = fnv1a_bytes(g.weights().data(),
                  g.weights().size() * sizeof(g.weights()[0]), h);
  return h;
}

}  // namespace adds
