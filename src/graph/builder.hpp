// Edge-list accumulation and CSR construction.
//
// All generators and text readers funnel through GraphBuilder, which sorts
// edges by source (counting sort over vertices — O(n+m)), optionally
// deduplicates parallel edges keeping the lightest, and emits a CsrGraph.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace adds {

template <WeightType W>
class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex-id space [0, n).
  explicit GraphBuilder(VertexId num_vertices) : n_(num_vertices) {}

  VertexId num_vertices() const noexcept { return n_; }
  size_t num_edges() const noexcept { return edges_.size(); }

  /// Adds a directed edge u -> v with weight w. Ids must be < n.
  void add_edge(VertexId u, VertexId v, W w) {
    ADDS_ASSERT(u < n_ && v < n_);
    edges_.push_back({u, v, w});
  }

  /// Adds both u -> v and v -> u.
  void add_undirected_edge(VertexId u, VertexId v, W w) {
    add_edge(u, v, w);
    add_edge(v, u, w);
  }

  struct BuildOptions {
    bool dedup_parallel_edges = true;  // keep the minimum-weight copy
    bool drop_self_loops = true;       // self loops never relax anything
  };

  /// Builds the CSR graph; the builder is left empty afterwards.
  CsrGraph<W> build(const BuildOptions& opts = {});

 private:
  struct Edge {
    VertexId src;
    VertexId dst;
    W weight;
  };
  VertexId n_;
  std::vector<Edge> edges_;
};

// ---------------------------------------------------------------------------
// Implementation (template).
// ---------------------------------------------------------------------------

template <WeightType W>
CsrGraph<W> GraphBuilder<W>::build(const BuildOptions& opts) {
  if (opts.drop_self_loops) {
    std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
  }

  // Counting sort by source vertex: stable and O(n + m).
  std::vector<EdgeIndex> offsets(size_t(n_) + 1, 0);
  for (const Edge& e : edges_) ++offsets[size_t(e.src) + 1];
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> targets(edges_.size());
  std::vector<W> weights(edges_.size());
  {
    std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges_) {
      const EdgeIndex at = cursor[e.src]++;
      targets[at] = e.dst;
      weights[at] = e.weight;
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();

  if (opts.dedup_parallel_edges) {
    // Within each adjacency list, sort by target and keep the lightest copy.
    std::vector<EdgeIndex> new_offsets(size_t(n_) + 1, 0);
    std::vector<std::pair<VertexId, W>> scratch;
    EdgeIndex write = 0;
    for (VertexId v = 0; v < n_; ++v) {
      const EdgeIndex lo = offsets[v], hi = offsets[size_t(v) + 1];
      scratch.clear();
      for (EdgeIndex e = lo; e < hi; ++e)
        scratch.emplace_back(targets[e], weights[e]);
      std::sort(scratch.begin(), scratch.end());
      for (size_t i = 0; i < scratch.size(); ++i) {
        if (i > 0 && scratch[i].first == scratch[i - 1].first) continue;
        targets[write] = scratch[i].first;
        weights[write] = scratch[i].second;
        ++write;
      }
      new_offsets[size_t(v) + 1] = write;
    }
    targets.resize(write);
    weights.resize(write);
    offsets = std::move(new_offsets);
  }

  return CsrGraph<W>(std::move(offsets), std::move(targets),
                     std::move(weights));
}

}  // namespace adds
