// The benchmark corpus: a deterministic stand-in for the paper's 226-graph
// Lonestar + SuiteSparse input set.
//
// The full tier contains exactly 226 graph specs spanning the degree and
// diameter classes of the paper's Table 2 (road networks, FEM meshes,
// power-law graphs, random graphs, small-world graphs, community chains and
// degenerate stressors). The default tier is a ~1/4 systematic sample used
// for quicker runs; the smoke tier is a dozen tiny graphs for CI.
#pragma once

#include <vector>

#include "graph/generators.hpp"

namespace adds {

enum class CorpusTier : uint8_t {
  kSmoke,    // ~12 tiny graphs; seconds
  kDefault,  // ~1/4 sample of full; minutes
  kFull,     // 226 graphs matching the paper's corpus size
};

/// All graph specs in a tier, in deterministic order.
std::vector<GraphSpec> corpus_specs(CorpusTier tier);

/// Named analogues of the specific graphs the paper analyses in depth.
/// These mirror the structural class of the original (see DESIGN.md):
///   road-USA     -> large 4-neighbour grid, heavy uniform weights
///   BenElechi1   -> moderate-radius FEM mesh
///   msdoor       -> high-radius FEM mesh
///   rmat22       -> RMAT power-law
///   c-big        -> chain of dense cliques
GraphSpec road_usa_like();
GraphSpec benelechi_like();
GraphSpec msdoor_like();
GraphSpec rmat22_like();
GraphSpec cbig_like();

/// Parse "smoke"/"default"/"full" (throws adds::Error otherwise).
CorpusTier parse_tier(const std::string& s);
const char* tier_name(CorpusTier t);

}  // namespace adds
