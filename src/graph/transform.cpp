#include "graph/transform.hpp"

#include <algorithm>
#include <vector>

namespace adds {

template <WeightType W>
CsrGraph<W> reverse_graph(const CsrGraph<W>& g) {
  const VertexId n = g.num_vertices();
  std::vector<EdgeIndex> offsets(size_t(n) + 1, 0);
  for (const VertexId t : g.targets()) ++offsets[size_t(t) + 1];
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> targets(g.num_edges());
  std::vector<W> weights(g.num_edges());
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeIndex e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const VertexId v = g.edge_target(e);
      const EdgeIndex at = cursor[v]++;
      targets[at] = u;
      weights[at] = g.edge_weight(e);
    }
  }
  return CsrGraph<W>(std::move(offsets), std::move(targets),
                     std::move(weights));
}

template <WeightType W>
bool is_symmetric(const CsrGraph<W>& g) {
  // Sort each adjacency (target, weight) list of g and of reverse(g); equal
  // multisets per vertex means symmetric.
  const auto rev = reverse_graph(g);
  std::vector<std::pair<VertexId, W>> a, b;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    a.clear();
    b.clear();
    for (EdgeIndex e = g.edge_begin(v); e < g.edge_end(v); ++e)
      a.emplace_back(g.edge_target(e), g.edge_weight(e));
    for (EdgeIndex e = rev.edge_begin(v); e < rev.edge_end(v); ++e)
      b.emplace_back(rev.edge_target(e), rev.edge_weight(e));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return false;
  }
  return true;
}

template CsrGraph<uint32_t> reverse_graph<uint32_t>(const CsrGraph<uint32_t>&);
template CsrGraph<float> reverse_graph<float>(const CsrGraph<float>&);
template bool is_symmetric<uint32_t>(const CsrGraph<uint32_t>&);
template bool is_symmetric<float>(const CsrGraph<float>&);

}  // namespace adds
