// Compressed Sparse Row (CSR) directed graph with edge weights.
//
// This is the read-only runtime representation every algorithm in the
// repository consumes. Construction goes through GraphBuilder (builder.hpp)
// or a file reader (gr_format.hpp / dimacs.hpp).
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "util/error.hpp"

namespace adds {

/// Immutable weighted directed graph in CSR form.
template <WeightType W>
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of prebuilt CSR arrays. `offsets` has n+1 entries with
  /// offsets[0]==0 and offsets[n]==targets.size()==weights.size().
  CsrGraph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets,
           std::vector<W> weights)
      : offsets_(std::move(offsets)),
        targets_(std::move(targets)),
        weights_(std::move(weights)) {
    validate();
  }

  VertexId num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeIndex num_edges() const noexcept { return targets_.size(); }
  bool empty() const noexcept { return num_vertices() == 0; }

  EdgeIndex out_degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }
  EdgeIndex edge_begin(VertexId v) const noexcept { return offsets_[v]; }
  EdgeIndex edge_end(VertexId v) const noexcept { return offsets_[v + 1]; }

  VertexId edge_target(EdgeIndex e) const noexcept { return targets_[e]; }
  W edge_weight(EdgeIndex e) const noexcept { return weights_[e]; }

  std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {targets_.data() + offsets_[v],
            static_cast<size_t>(out_degree(v))};
  }
  std::span<const W> neighbor_weights(VertexId v) const noexcept {
    return {weights_.data() + offsets_[v],
            static_cast<size_t>(out_degree(v))};
  }

  std::span<const EdgeIndex> offsets() const noexcept { return offsets_; }
  std::span<const VertexId> targets() const noexcept { return targets_; }
  std::span<const W> weights() const noexcept { return weights_; }

  double average_degree() const noexcept {
    return num_vertices() == 0
               ? 0.0
               : double(num_edges()) / double(num_vertices());
  }

  /// Mean edge weight (the W term of the Near-Far Δ heuristic).
  double average_weight() const noexcept {
    if (weights_.empty()) return 0.0;
    double acc = 0.0;
    for (const W w : weights_) acc += double(w);
    return acc / double(weights_.size());
  }

  W max_weight() const noexcept {
    W m = W{0};
    for (const W w : weights_)
      if (w > m) m = w;
    return m;
  }

  /// Approximate device memory footprint of the CSR arrays in bytes.
  size_t footprint_bytes() const noexcept {
    return offsets_.size() * sizeof(EdgeIndex) +
           targets_.size() * sizeof(VertexId) + weights_.size() * sizeof(W);
  }

 private:
  void validate() const {
    ADDS_REQUIRE(!offsets_.empty() && offsets_.front() == 0,
                 "CSR offsets must start at 0");
    ADDS_REQUIRE(offsets_.back() == targets_.size(),
                 "CSR offsets end must equal edge count");
    ADDS_REQUIRE(targets_.size() == weights_.size(),
                 "CSR targets/weights size mismatch");
    const VertexId n = static_cast<VertexId>(offsets_.size() - 1);
    for (size_t i = 1; i < offsets_.size(); ++i)
      ADDS_REQUIRE(offsets_[i - 1] <= offsets_[i],
                   "CSR offsets must be non-decreasing");
    for (const VertexId t : targets_)
      ADDS_REQUIRE(t < n, "CSR edge target out of range");
  }

  std::vector<EdgeIndex> offsets_;  // n+1 entries
  std::vector<VertexId> targets_;   // m entries
  std::vector<W> weights_;          // m entries
};

using IntGraph = CsrGraph<uint32_t>;
using FloatGraph = CsrGraph<float>;

}  // namespace adds
