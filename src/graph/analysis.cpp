#include "graph/analysis.hpp"

#include <algorithm>
#include <queue>

#include "util/rng.hpp"

namespace adds {

template <WeightType W>
std::vector<uint32_t> bfs_hops(const CsrGraph<W>& g, VertexId source) {
  std::vector<uint32_t> hops(g.num_vertices(), kUnreachedHops);
  if (g.empty()) return hops;
  ADDS_ASSERT(source < g.num_vertices());
  // Two-vector frontier BFS: cheaper than std::queue for whole-graph sweeps.
  std::vector<VertexId> frontier{source}, next;
  hops[source] = 0;
  uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const VertexId u : frontier) {
      for (const VertexId v : g.neighbors(u)) {
        if (hops[v] == kUnreachedHops) {
          hops[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return hops;
}

template <WeightType W>
uint64_t count_reachable(const CsrGraph<W>& g, VertexId source) {
  const auto hops = bfs_hops(g, source);
  return uint64_t(
      std::count_if(hops.begin(), hops.end(),
                    [](uint32_t h) { return h != kUnreachedHops; }));
}

template <WeightType W>
uint32_t pseudo_diameter(const CsrGraph<W>& g, VertexId start, int sweeps) {
  if (g.empty()) return 0;
  VertexId from = start;
  uint32_t best = 0;
  for (int s = 0; s < sweeps; ++s) {
    const auto hops = bfs_hops(g, from);
    uint32_t far_hops = 0;
    VertexId far_v = from;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (hops[v] != kUnreachedHops && hops[v] > far_hops) {
        far_hops = hops[v];
        far_v = v;
      }
    }
    best = std::max(best, far_hops);
    if (far_v == from) break;  // converged
    from = far_v;
  }
  return best;
}

template <WeightType W>
VertexId pick_source(const CsrGraph<W>& g, uint64_t seed) {
  if (g.empty()) return 0;
  Xoshiro256 rng(seed);
  VertexId best_v = 0;
  uint64_t best_reach = 0;
  constexpr int kCandidates = 4;
  for (int i = 0; i < kCandidates; ++i) {
    // Candidate 0 is always vertex 0 (generators put hubs/corners there).
    const VertexId v =
        i == 0 ? 0 : VertexId(rng.next_below(g.num_vertices()));
    const uint64_t reach = count_reachable(g, v);
    if (reach > best_reach) {
      best_reach = reach;
      best_v = v;
    }
    if (best_reach == g.num_vertices()) break;
  }
  return best_v;
}

template <WeightType W>
GraphSummary summarize(const CsrGraph<W>& g) {
  GraphSummary s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.avg_degree = g.average_degree();
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    s.max_degree = std::max<uint64_t>(s.max_degree, g.out_degree(v));
  s.avg_weight = g.average_weight();
  s.source = pick_source(g);
  s.reach_fraction =
      g.empty() ? 0.0
                : double(count_reachable(g, s.source)) /
                      double(g.num_vertices());
  s.diameter = pseudo_diameter(g, s.source);
  return s;
}

template std::vector<uint32_t> bfs_hops<uint32_t>(const CsrGraph<uint32_t>&,
                                                  VertexId);
template std::vector<uint32_t> bfs_hops<float>(const CsrGraph<float>&,
                                               VertexId);
template uint64_t count_reachable<uint32_t>(const CsrGraph<uint32_t>&,
                                            VertexId);
template uint64_t count_reachable<float>(const CsrGraph<float>&, VertexId);
template uint32_t pseudo_diameter<uint32_t>(const CsrGraph<uint32_t>&,
                                            VertexId, int);
template uint32_t pseudo_diameter<float>(const CsrGraph<float>&, VertexId,
                                         int);
template VertexId pick_source<uint32_t>(const CsrGraph<uint32_t>&, uint64_t);
template VertexId pick_source<float>(const CsrGraph<float>&, uint64_t);
template GraphSummary summarize<uint32_t>(const CsrGraph<uint32_t>&);
template GraphSummary summarize<float>(const CsrGraph<float>&);

}  // namespace adds
