#include "graph/gr_format.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace adds {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void read_exact(std::FILE* f, void* dst, size_t bytes, const char* what) {
  ADDS_REQUIRE(std::fread(dst, 1, bytes, f) == bytes,
               std::string("GR file truncated while reading ") + what);
}

void write_exact(std::FILE* f, const void* src, size_t bytes) {
  ADDS_REQUIRE(std::fwrite(src, 1, bytes, f) == bytes,
               "GR file write failed");
}

}  // namespace

template <WeightType W>
CsrGraph<W> read_gr(const std::string& path) {
  static_assert(sizeof(W) == 4, "GR v1 stores 4-byte edge data");
  FilePtr f(std::fopen(path.c_str(), "rb"));
  ADDS_REQUIRE(f != nullptr, "cannot open GR file: " + path);

  // Actual file size, measured before any allocation: the header's node
  // and edge counts size three large vectors below, and a corrupted count
  // must fail with a typed error, not an allocation bomb.
  ADDS_REQUIRE(std::fseek(f.get(), 0, SEEK_END) == 0,
               "cannot seek GR file: " + path);
  const long file_size_l = std::ftell(f.get());
  ADDS_REQUIRE(file_size_l >= 0, "cannot size GR file: " + path);
  const uint64_t file_size = uint64_t(file_size_l);
  std::rewind(f.get());

  uint64_t header[4];
  read_exact(f.get(), header, sizeof(header), "header");
  const uint64_t version = header[0];
  const uint64_t edge_ty_size = header[1];
  const uint64_t num_nodes = header[2];
  const uint64_t num_edges = header[3];
  ADDS_REQUIRE(version == 1, "unsupported GR version in " + path);
  ADDS_REQUIRE(edge_ty_size == sizeof(W),
               "GR edge data size mismatch in " + path);
  ADDS_REQUIRE(num_nodes < kInvalidVertex, "GR node count too large");
  ADDS_REQUIRE(num_edges < (uint64_t(1) << 56), "GR edge count too large");
  const uint64_t expected = sizeof(header) + num_nodes * sizeof(uint64_t) +
                            num_edges * sizeof(uint32_t) +
                            (num_edges % 2 != 0 ? sizeof(uint32_t) : 0) +
                            num_edges * sizeof(W);
  ADDS_REQUIRE(file_size >= expected,
               "GR header inconsistent with file size (truncated?) in " +
                   path);

  std::vector<uint64_t> out_idx(num_nodes);
  read_exact(f.get(), out_idx.data(), num_nodes * sizeof(uint64_t), "outIdx");

  std::vector<VertexId> targets(num_edges);
  read_exact(f.get(), targets.data(), num_edges * sizeof(uint32_t), "outs");

  if (num_edges % 2 != 0) {
    uint32_t pad;
    read_exact(f.get(), &pad, sizeof(pad), "padding");
  }

  std::vector<W> weights(num_edges);
  read_exact(f.get(), weights.data(), num_edges * sizeof(W), "edgeData");

  // GR stores end offsets; CsrGraph wants a leading 0. The offsets must be
  // non-decreasing and bounded by the edge count, or downstream degree
  // arithmetic (edge_end - edge_begin on unsigned types) underflows into
  // out-of-bounds CSR walks.
  std::vector<EdgeIndex> offsets(num_nodes + 1, 0);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    ADDS_REQUIRE(out_idx[i] >= offsets[i] && out_idx[i] <= num_edges,
                 "GR outIdx not monotonic in " + path);
    offsets[i + 1] = out_idx[i];
  }
  ADDS_REQUIRE(offsets.back() == num_edges,
               "GR outIdx inconsistent with edge count in " + path);
  // Every edge target must name a vertex of this graph: a single
  // out-of-range id would be an out-of-bounds distance-array access in
  // every solver that relaxes the edge.
  for (uint64_t e = 0; e < num_edges; ++e)
    ADDS_REQUIRE(targets[e] < num_nodes,
                 "GR edge target out of range in " + path);

  return CsrGraph<W>(std::move(offsets), std::move(targets),
                     std::move(weights));
}

template <WeightType W>
void write_gr(const CsrGraph<W>& graph, const std::string& path) {
  static_assert(sizeof(W) == 4, "GR v1 stores 4-byte edge data");
  FilePtr f(std::fopen(path.c_str(), "wb"));
  ADDS_REQUIRE(f != nullptr, "cannot create GR file: " + path);

  const uint64_t header[4] = {1, sizeof(W), graph.num_vertices(),
                              graph.num_edges()};
  write_exact(f.get(), header, sizeof(header));

  std::vector<uint64_t> out_idx(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v)
    out_idx[v] = graph.edge_end(v);
  write_exact(f.get(), out_idx.data(), out_idx.size() * sizeof(uint64_t));

  write_exact(f.get(), graph.targets().data(),
              graph.num_edges() * sizeof(uint32_t));
  if (graph.num_edges() % 2 != 0) {
    const uint32_t pad = 0;
    write_exact(f.get(), &pad, sizeof(pad));
  }
  write_exact(f.get(), graph.weights().data(), graph.num_edges() * sizeof(W));
}

template CsrGraph<uint32_t> read_gr<uint32_t>(const std::string&);
template CsrGraph<float> read_gr<float>(const std::string&);
template void write_gr<uint32_t>(const CsrGraph<uint32_t>&,
                                 const std::string&);
template void write_gr<float>(const CsrGraph<float>&, const std::string&);

}  // namespace adds
