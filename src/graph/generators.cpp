#include "graph/generators.hpp"

#include <cmath>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace adds {

namespace {

/// Draws one edge weight from the spec'd distribution.
template <WeightType W>
class WeightSampler {
 public:
  WeightSampler(const WeightParams& wp, uint64_t seed)
      : wp_(wp), rng_(mix_seed(seed, 0x57e16475u)) {}

  W next() {
    switch (wp_.dist) {
      case WeightDist::kUnit:
        return W{1};
      case WeightDist::kUniform: {
        const uint64_t v =
            rng_.next_range(std::max(1u, wp_.min_weight), wp_.max_weight);
        if constexpr (std::is_same_v<W, float>)
          return static_cast<float>(v) +
                 rng_.next_float();  // break integer ties for float graphs
        else
          return static_cast<uint32_t>(v);
      }
      case WeightDist::kLongTail: {
        // w = max^u for u uniform in (0,1]: log-uniform, mostly small with a
        // heavy tail, like travel-time or capacity weights.
        const double u = rng_.next_double();
        const double v = std::pow(double(wp_.max_weight), u);
        if constexpr (std::is_same_v<W, float>)
          return std::max(1e-3f, static_cast<float>(v));
        else
          return static_cast<uint32_t>(std::max(1.0, v));
      }
    }
    return W{1};
  }

 private:
  WeightParams wp_;
  Xoshiro256 rng_;
};

}  // namespace

const char* weight_dist_name(WeightDist d) {
  switch (d) {
    case WeightDist::kUnit: return "unit";
    case WeightDist::kUniform: return "uniform";
    case WeightDist::kLongTail: return "longtail";
  }
  return "?";
}

const char* family_name(GraphFamily f) {
  switch (f) {
    case GraphFamily::kGridRoad: return "grid-road";
    case GraphFamily::kKNeighborMesh: return "mesh";
    case GraphFamily::kRmat: return "rmat";
    case GraphFamily::kErdosRenyi: return "erdos-renyi";
    case GraphFamily::kWattsStrogatz: return "watts-strogatz";
    case GraphFamily::kCliqueChain: return "clique-chain";
    case GraphFamily::kStar: return "star";
    case GraphFamily::kChain: return "chain";
    case GraphFamily::kBinaryTree: return "binary-tree";
  }
  return "?";
}

template <WeightType W>
CsrGraph<W> make_grid_road(uint64_t width, uint64_t height,
                           const WeightParams& wp, uint64_t seed) {
  ADDS_REQUIRE(width >= 1 && height >= 1, "grid dimensions must be positive");
  const uint64_t n = width * height;
  ADDS_REQUIRE(n < kInvalidVertex, "grid too large");
  GraphBuilder<W> b{VertexId(n)};
  WeightSampler<W> ws(wp, seed);
  auto id = [width](uint64_t x, uint64_t y) {
    return VertexId(y * width + x);
  };
  for (uint64_t y = 0; y < height; ++y) {
    for (uint64_t x = 0; x < width; ++x) {
      if (x + 1 < width) b.add_undirected_edge(id(x, y), id(x + 1, y), ws.next());
      if (y + 1 < height) b.add_undirected_edge(id(x, y), id(x, y + 1), ws.next());
    }
  }
  return b.build();
}

template <WeightType W>
CsrGraph<W> make_kneighbor_mesh(uint64_t width, uint64_t height,
                                uint32_t radius, const WeightParams& wp,
                                uint64_t seed) {
  ADDS_REQUIRE(radius >= 1, "mesh radius must be >= 1");
  const uint64_t n = width * height;
  ADDS_REQUIRE(n < kInvalidVertex, "mesh too large");
  GraphBuilder<W> b{VertexId(n)};
  WeightSampler<W> ws(wp, seed);
  auto id = [width](uint64_t x, uint64_t y) {
    return VertexId(y * width + x);
  };
  const int64_t r = radius;
  for (uint64_t y = 0; y < height; ++y) {
    for (uint64_t x = 0; x < width; ++x) {
      // Connect to the lexicographically-later half of the neighbourhood so
      // each undirected edge is created exactly once.
      for (int64_t dy = 0; dy <= r; ++dy) {
        for (int64_t dx = (dy == 0 ? 1 : -r); dx <= r; ++dx) {
          const int64_t nx = int64_t(x) + dx;
          const int64_t ny = int64_t(y) + dy;
          if (nx < 0 || ny < 0 || nx >= int64_t(width) ||
              ny >= int64_t(height))
            continue;
          b.add_undirected_edge(id(x, y), id(uint64_t(nx), uint64_t(ny)),
                                ws.next());
        }
      }
    }
  }
  return b.build();
}

template <WeightType W>
CsrGraph<W> make_rmat(uint32_t scale, uint32_t edge_factor, double a, double b,
                      double c, const WeightParams& wp, uint64_t seed) {
  ADDS_REQUIRE(scale >= 1 && scale <= 30, "rmat scale out of range");
  ADDS_REQUIRE(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0,
               "rmat probabilities must satisfy a+b+c<1");
  const uint64_t n = 1ull << scale;
  const uint64_t m = uint64_t(edge_factor) * n;
  GraphBuilder<W> bld{VertexId(n)};
  WeightSampler<W> ws(wp, seed);
  Xoshiro256 rng(mix_seed(seed, 0x12a7u));
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double p = rng.next_double();
      uint64_t du = 0, dv = 0;
      if (p < a) {
        // top-left quadrant
      } else if (p < a + b) {
        dv = 1;
      } else if (p < a + b + c) {
        du = 1;
      } else {
        du = 1;
        dv = 1;
      }
      u = (u << 1) | du;
      v = (v << 1) | dv;
    }
    // Both directions: Lonestar's rmat inputs are traversable from a single
    // source (>= 75% reachability criterion), which a one-directional RMAT
    // sample does not satisfy.
    bld.add_undirected_edge(VertexId(u), VertexId(v), ws.next());
  }
  return bld.build();
}

template <WeightType W>
CsrGraph<W> make_erdos_renyi(uint64_t n, double avg_degree,
                             const WeightParams& wp, uint64_t seed) {
  ADDS_REQUIRE(n >= 2, "erdos-renyi needs >= 2 vertices");
  const uint64_t m = uint64_t(std::llround(double(n) * avg_degree / 2.0));
  GraphBuilder<W> b{VertexId(n)};
  WeightSampler<W> ws(wp, seed);
  Xoshiro256 rng(mix_seed(seed, 0xe12du));
  for (uint64_t i = 0; i < m; ++i) {
    const VertexId u = VertexId(rng.next_below(n));
    VertexId v = VertexId(rng.next_below(n));
    if (u == v) v = VertexId((v + 1) % n);
    b.add_undirected_edge(u, v, ws.next());
  }
  return b.build();
}

template <WeightType W>
CsrGraph<W> make_watts_strogatz(uint64_t n, uint32_t k, double p,
                                const WeightParams& wp, uint64_t seed) {
  ADDS_REQUIRE(n >= 4 && k >= 2 && k % 2 == 0, "watts-strogatz needs even k");
  GraphBuilder<W> b{VertexId(n)};
  WeightSampler<W> ws(wp, seed);
  Xoshiro256 rng(mix_seed(seed, 0x5774u));
  for (uint64_t u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k / 2; ++j) {
      uint64_t v = (u + j) % n;
      if (rng.next_bool(p)) {
        v = rng.next_below(n);
        if (v == u) v = (v + 1) % n;
      }
      b.add_undirected_edge(VertexId(u), VertexId(v), ws.next());
    }
  }
  return b.build();
}

template <WeightType W>
CsrGraph<W> make_clique_chain(uint64_t num_cliques, uint32_t clique_size,
                              const WeightParams& wp, uint64_t seed) {
  ADDS_REQUIRE(num_cliques >= 1 && clique_size >= 2, "bad clique-chain shape");
  const uint64_t n = num_cliques * clique_size;
  ADDS_REQUIRE(n < kInvalidVertex, "clique-chain too large");
  GraphBuilder<W> b{VertexId(n)};
  WeightSampler<W> ws(wp, seed);
  for (uint64_t cq = 0; cq < num_cliques; ++cq) {
    const uint64_t base = cq * clique_size;
    for (uint32_t i = 0; i < clique_size; ++i)
      for (uint32_t j = i + 1; j < clique_size; ++j)
        b.add_undirected_edge(VertexId(base + i), VertexId(base + j),
                              ws.next());
    if (cq + 1 < num_cliques)
      b.add_undirected_edge(VertexId(base + clique_size - 1),
                            VertexId(base + clique_size), ws.next());
  }
  return b.build();
}

template <WeightType W>
CsrGraph<W> make_star(uint64_t n, const WeightParams& wp, uint64_t seed) {
  ADDS_REQUIRE(n >= 2, "star needs >= 2 vertices");
  GraphBuilder<W> b{VertexId(n)};
  WeightSampler<W> ws(wp, seed);
  for (uint64_t v = 1; v < n; ++v)
    b.add_undirected_edge(0, VertexId(v), ws.next());
  return b.build();
}

template <WeightType W>
CsrGraph<W> make_chain(uint64_t n, const WeightParams& wp, uint64_t seed) {
  ADDS_REQUIRE(n >= 2, "chain needs >= 2 vertices");
  GraphBuilder<W> b{VertexId(n)};
  WeightSampler<W> ws(wp, seed);
  for (uint64_t v = 0; v + 1 < n; ++v)
    b.add_undirected_edge(VertexId(v), VertexId(v + 1), ws.next());
  return b.build();
}

template <WeightType W>
CsrGraph<W> make_binary_tree(uint64_t n, const WeightParams& wp,
                             uint64_t seed) {
  ADDS_REQUIRE(n >= 2, "tree needs >= 2 vertices");
  GraphBuilder<W> b{VertexId(n)};
  WeightSampler<W> ws(wp, seed);
  for (uint64_t v = 1; v < n; ++v)
    b.add_undirected_edge(VertexId((v - 1) / 2), VertexId(v), ws.next());
  return b.build();
}

template <WeightType W>
CsrGraph<W> generate_graph(const GraphSpec& s) {
  switch (s.family) {
    case GraphFamily::kGridRoad:
      return make_grid_road<W>(s.scale, uint64_t(s.a), s.weights, s.seed);
    case GraphFamily::kKNeighborMesh:
      return make_kneighbor_mesh<W>(s.scale, uint64_t(s.a), uint32_t(s.b),
                                    s.weights, s.seed);
    case GraphFamily::kRmat:
      return make_rmat<W>(uint32_t(s.scale), uint32_t(s.a), 0.57, 0.19, 0.19,
                          s.weights, s.seed);
    case GraphFamily::kErdosRenyi:
      return make_erdos_renyi<W>(s.scale, s.a, s.weights, s.seed);
    case GraphFamily::kWattsStrogatz:
      return make_watts_strogatz<W>(s.scale, uint32_t(s.a), s.b, s.weights,
                                    s.seed);
    case GraphFamily::kCliqueChain:
      return make_clique_chain<W>(s.scale, uint32_t(s.a), s.weights, s.seed);
    case GraphFamily::kStar:
      return make_star<W>(s.scale, s.weights, s.seed);
    case GraphFamily::kChain:
      return make_chain<W>(s.scale, s.weights, s.seed);
    case GraphFamily::kBinaryTree:
      return make_binary_tree<W>(s.scale, s.weights, s.seed);
  }
  throw Error("unknown graph family");
}

// Explicit instantiations for both weight flavours.
#define ADDS_INSTANTIATE(W)                                                  \
  template CsrGraph<W> generate_graph<W>(const GraphSpec&);                  \
  template CsrGraph<W> make_grid_road<W>(uint64_t, uint64_t,                 \
                                         const WeightParams&, uint64_t);     \
  template CsrGraph<W> make_kneighbor_mesh<W>(                               \
      uint64_t, uint64_t, uint32_t, const WeightParams&, uint64_t);          \
  template CsrGraph<W> make_rmat<W>(uint32_t, uint32_t, double, double,      \
                                    double, const WeightParams&, uint64_t);  \
  template CsrGraph<W> make_erdos_renyi<W>(uint64_t, double,                 \
                                           const WeightParams&, uint64_t);   \
  template CsrGraph<W> make_watts_strogatz<W>(                               \
      uint64_t, uint32_t, double, const WeightParams&, uint64_t);            \
  template CsrGraph<W> make_clique_chain<W>(uint64_t, uint32_t,              \
                                            const WeightParams&, uint64_t);  \
  template CsrGraph<W> make_star<W>(uint64_t, const WeightParams&,           \
                                    uint64_t);                               \
  template CsrGraph<W> make_chain<W>(uint64_t, const WeightParams&,          \
                                     uint64_t);                              \
  template CsrGraph<W> make_binary_tree<W>(uint64_t, const WeightParams&,    \
                                           uint64_t);

ADDS_INSTANTIATE(uint32_t)
ADDS_INSTANTIATE(float)
#undef ADDS_INSTANTIATE

}  // namespace adds
