// Galois binary `.gr` (GR v1) graph format reader/writer.
//
// This is the format the paper's artifact distributes its 226 inputs in
// (http://users.diag.uniroma1.it/challenge9/format.shtml as adapted by
// Galois). Layout, all little-endian 64-bit header words:
//
//   uint64 version (== 1)
//   uint64 sizeof(EdgeTy) (== 4 for both int and float graphs)
//   uint64 numNodes
//   uint64 numEdges
//   uint64 outIdx[numNodes]     // *end* offset of each node's edge range
//   uint32 outs[numEdges]       // edge destinations
//   (4 bytes padding if numEdges is odd)
//   EdgeTy edgeData[numEdges]   // uint32 or float, 4 bytes each
//
// When real artifact inputs are available they drop straight into the bench
// harness via these readers; otherwise the generated corpus is used.
#pragma once

#include <string>

#include "graph/csr_graph.hpp"

namespace adds {

/// Reads a GR v1 file with 4-byte edge data interpreted as W.
/// Throws adds::Error on malformed input.
template <WeightType W>
CsrGraph<W> read_gr(const std::string& path);

/// Writes `graph` in GR v1 format. Throws adds::Error on I/O failure.
template <WeightType W>
void write_gr(const CsrGraph<W>& graph, const std::string& path);

extern template CsrGraph<uint32_t> read_gr<uint32_t>(const std::string&);
extern template CsrGraph<float> read_gr<float>(const std::string&);
extern template void write_gr<uint32_t>(const CsrGraph<uint32_t>&,
                                        const std::string&);
extern template void write_gr<float>(const CsrGraph<float>&,
                                     const std::string&);

}  // namespace adds
