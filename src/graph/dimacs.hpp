// Text graph formats: DIMACS 9th-challenge shortest-path format and
// MatrixMarket coordinate format (the SuiteSparse distribution format the
// paper's inputs were converted from).
#pragma once

#include <string>

#include "graph/csr_graph.hpp"

namespace adds {

/// Reads a DIMACS ".gr" *text* file:
///   c <comment>
///   p sp <num_vertices> <num_edges>
///   a <src> <dst> <weight>        (1-based vertex ids)
/// Throws adds::Error on malformed input.
template <WeightType W>
CsrGraph<W> read_dimacs(const std::string& path);

/// Writes the DIMACS text format (1-based ids).
template <WeightType W>
void write_dimacs(const CsrGraph<W>& graph, const std::string& path);

/// Reads a MatrixMarket coordinate file as a graph. Pattern matrices get
/// unit weights; `symmetric` headers are expanded to both directions.
/// Entry values are clamped to be positive (the paper converts negative
/// weights to positive).
template <WeightType W>
CsrGraph<W> read_matrix_market(const std::string& path);

extern template CsrGraph<uint32_t> read_dimacs<uint32_t>(const std::string&);
extern template CsrGraph<float> read_dimacs<float>(const std::string&);
extern template void write_dimacs<uint32_t>(const CsrGraph<uint32_t>&,
                                            const std::string&);
extern template void write_dimacs<float>(const CsrGraph<float>&,
                                         const std::string&);
extern template CsrGraph<uint32_t> read_matrix_market<uint32_t>(
    const std::string&);
extern template CsrGraph<float> read_matrix_market<float>(const std::string&);

}  // namespace adds
