// Fundamental graph types shared across the library.
//
// Vertices are dense 32-bit ids (the paper's graphs top out at a few tens of
// millions of vertices). Edge counts use 64-bit offsets. Edge weights come in
// the paper's two flavours — `uint32_t` ("int graphs") and `float` ("float
// graphs") — and algorithms are templated over the weight type with
// DistTraits supplying the matching distance arithmetic.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>

namespace adds {

using VertexId = uint32_t;
using EdgeIndex = uint64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Distance arithmetic for a weight type. Integer weights accumulate into
/// 64-bit distances so that long high-weight paths cannot overflow; float
/// weights accumulate in float exactly as the paper's float variants do.
template <typename W>
struct DistTraits;

template <>
struct DistTraits<uint32_t> {
  using Dist = uint64_t;
  static constexpr Dist infinity() noexcept {
    return std::numeric_limits<Dist>::max();
  }
};

template <>
struct DistTraits<float> {
  using Dist = float;
  static constexpr Dist infinity() noexcept {
    return std::numeric_limits<float>::infinity();
  }
};

template <typename W>
using DistT = typename DistTraits<W>::Dist;

template <typename W>
concept WeightType = std::is_same_v<W, uint32_t> || std::is_same_v<W, float>;

}  // namespace adds
