// Structural graph analysis: BFS, reachability, pseudo-diameter, and the
// summary record used to classify corpus graphs into the paper's Table 2
// degree/diameter bins and to pick SSSP sources.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace adds {

/// Hop distances from `source` (kUnreachedHops where unreachable).
inline constexpr uint32_t kUnreachedHops = ~0u;

template <WeightType W>
std::vector<uint32_t> bfs_hops(const CsrGraph<W>& g, VertexId source);

/// Number of vertices reachable from `source` (including source).
template <WeightType W>
uint64_t count_reachable(const CsrGraph<W>& g, VertexId source);

/// Pseudo-diameter by repeated BFS sweeps (lower bound on the true hop
/// diameter; standard double-sweep heuristic). Returns 0 for empty graphs.
template <WeightType W>
uint32_t pseudo_diameter(const CsrGraph<W>& g, VertexId start = 0,
                         int sweeps = 3);

/// Picks an SSSP source that reaches many vertices: tries a handful of
/// candidates and returns the one with the largest reach.
template <WeightType W>
VertexId pick_source(const CsrGraph<W>& g, uint64_t seed = 42);

/// Summary used by Table 2 and by per-graph bench reporting.
struct GraphSummary {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  double avg_degree = 0.0;
  uint64_t max_degree = 0;
  double avg_weight = 0.0;
  uint32_t diameter = 0;        // pseudo-diameter
  double reach_fraction = 0.0;  // from pick_source
  VertexId source = 0;
};

template <WeightType W>
GraphSummary summarize(const CsrGraph<W>& g);

extern template std::vector<uint32_t> bfs_hops<uint32_t>(
    const CsrGraph<uint32_t>&, VertexId);
extern template std::vector<uint32_t> bfs_hops<float>(const CsrGraph<float>&,
                                                      VertexId);
extern template uint64_t count_reachable<uint32_t>(const CsrGraph<uint32_t>&,
                                                   VertexId);
extern template uint64_t count_reachable<float>(const CsrGraph<float>&,
                                                VertexId);
extern template uint32_t pseudo_diameter<uint32_t>(const CsrGraph<uint32_t>&,
                                                   VertexId, int);
extern template uint32_t pseudo_diameter<float>(const CsrGraph<float>&,
                                                VertexId, int);
extern template VertexId pick_source<uint32_t>(const CsrGraph<uint32_t>&,
                                               uint64_t);
extern template VertexId pick_source<float>(const CsrGraph<float>&, uint64_t);
extern template GraphSummary summarize<uint32_t>(const CsrGraph<uint32_t>&);
extern template GraphSummary summarize<float>(const CsrGraph<float>&);

}  // namespace adds
