// Live graph deltas: structural patches over an immutable CSR snapshot.
//
// A GraphDelta is a batch of edge mutations — weight changes on existing
// edges plus whole-edge inserts — applied to a parent CsrGraph to produce
// a CHILD snapshot (apply_delta). The parent is never mutated: snapshots
// stay immutable, so in-flight queries and cached results keyed on the
// parent fingerprint remain valid for the parent, and the child gets its
// own content fingerprint (graph/fingerprint.hpp) like any other graph.
//
// The classification the application computes on the way through
// (decreased / increased / inserted edges, with old and new weights) is
// exactly what the in-place SSSP repair planner (sssp/repair.hpp) needs:
// decreases and inserts seed the warm frontier at their tails, increases
// drive the stale-subtree invalidation. Vertex set growth is out of scope
// — every endpoint must already exist in the parent.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "util/error.hpp"

namespace adds {

/// One requested mutation: set edge (src, dst) to `weight`. If the parent
/// has the edge this is a weight change; if not, an insert. Duplicate
/// entries for the same edge apply in order — the last one wins.
template <WeightType W>
struct EdgeChange {
  VertexId src = 0;
  VertexId dst = 0;
  W weight = W{1};
};

template <WeightType W>
struct GraphDelta {
  std::vector<EdgeChange<W>> changes;

  bool empty() const noexcept { return changes.empty(); }
  size_t size() const noexcept { return changes.size(); }
};

/// Tally of what a delta actually did to the parent (no-op changes —
/// setting an edge to the weight it already has — are counted but produce
/// no classified edge).
struct DeltaStats {
  uint64_t decreases = 0;
  uint64_t increases = 0;
  uint64_t inserts = 0;
  uint64_t unchanged = 0;

  uint64_t total() const noexcept {
    return decreases + increases + inserts + unchanged;
  }
};

/// A classified, applied edge mutation. `old_weight` is meaningful only
/// for weight changes (for inserts the edge did not exist — conceptually
/// an infinite old weight, which is why the repair planner treats inserts
/// as decreases).
template <WeightType W>
struct ClassifiedEdge {
  VertexId src = 0;
  VertexId dst = 0;
  W old_weight = W{0};
  W new_weight = W{0};
};

/// Child snapshot plus the classification the repair planner consumes.
template <WeightType W>
struct DeltaResult {
  CsrGraph<W> graph;  // the child snapshot
  DeltaStats stats;
  std::vector<ClassifiedEdge<W>> decreased;  // existing edges, new < old
  std::vector<ClassifiedEdge<W>> increased;  // existing edges, new > old
  std::vector<ClassifiedEdge<W>> inserted;   // edges absent from the parent
};

/// Applies `delta` to `parent` and returns the child snapshot with the
/// per-edge classification. Throws adds::Error for malformed changes
/// (endpoint out of range, self loop, non-positive weight) — a delta is
/// operator input and must fail loudly, not warp the graph. O(E) when the
/// delta only changes weights (array copy + in-place patch); inserts
/// rebuild the CSR through GraphBuilder (still O(V + E)).
template <WeightType W>
DeltaResult<W> apply_delta(const CsrGraph<W>& parent,
                           const GraphDelta<W>& delta) {
  const VertexId n = parent.num_vertices();
  DeltaResult<W> out;

  // Validate up front: nothing is applied unless everything is applicable.
  for (const EdgeChange<W>& c : delta.changes) {
    ADDS_REQUIRE(c.src < n && c.dst < n,
                 "graph-delta: edge endpoint out of range");
    ADDS_REQUIRE(c.src != c.dst, "graph-delta: self loop");
    ADDS_REQUIRE(c.weight > W{0}, "graph-delta: non-positive edge weight");
  }

  // Patch weights on a working copy; collect inserts for the rebuild.
  std::vector<W> weights(parent.weights().begin(), parent.weights().end());
  std::vector<EdgeChange<W>> inserts;
  for (const EdgeChange<W>& c : delta.changes) {
    EdgeIndex found = EdgeIndex(-1);
    for (EdgeIndex e = parent.edge_begin(c.src); e < parent.edge_end(c.src);
         ++e) {
      if (parent.edge_target(e) == c.dst) {
        found = e;
        break;
      }
    }
    if (found == EdgeIndex(-1)) {
      // A repeated insert of the same edge: the last weight wins, and the
      // classification carries one entry per final edge.
      bool repeated = false;
      for (auto& prev : inserts) {
        if (prev.src == c.src && prev.dst == c.dst) {
          prev.weight = c.weight;
          repeated = true;
          break;
        }
      }
      if (!repeated) inserts.push_back(c);
      continue;
    }
    const W old_w = weights[found];
    if (c.weight == old_w) {
      ++out.stats.unchanged;
      continue;
    }
    // A later change to the same edge supersedes an earlier one: drop the
    // earlier classification so the planner sees the NET change vs the
    // parent (old weight = the parent's, not the intermediate).
    const W parent_w = parent.edge_weight(found);
    const auto drop_prior = [&](std::vector<ClassifiedEdge<W>>& list) {
      for (size_t i = 0; i < list.size(); ++i) {
        if (list[i].src == c.src && list[i].dst == c.dst) {
          list.erase(list.begin() + long(i));
          return;
        }
      }
    };
    drop_prior(out.decreased);
    drop_prior(out.increased);
    weights[found] = c.weight;
    if (c.weight == parent_w) continue;  // net no-op vs the parent
    ClassifiedEdge<W> ce;
    ce.src = c.src;
    ce.dst = c.dst;
    ce.old_weight = parent_w;
    ce.new_weight = c.weight;
    (c.weight < parent_w ? out.decreased : out.increased).push_back(ce);
  }
  out.stats.decreases = out.decreased.size();
  out.stats.increases = out.increased.size();
  out.stats.inserts = inserts.size();

  if (inserts.empty()) {
    out.graph = CsrGraph<W>(
        std::vector<EdgeIndex>(parent.offsets().begin(),
                               parent.offsets().end()),
        std::vector<VertexId>(parent.targets().begin(),
                              parent.targets().end()),
        std::move(weights));
    return out;
  }

  // Inserts change the topology: rebuild the CSR with the patched weights
  // plus the new edges. No dedup pass — the parent's adjacency is already
  // deduped by construction and the inserts were verified absent, so the
  // builder's counting sort alone preserves every edge exactly once.
  GraphBuilder<W> b(n);
  for (VertexId u = 0; u < n; ++u)
    for (EdgeIndex e = parent.edge_begin(u); e < parent.edge_end(u); ++e)
      b.add_edge(u, parent.edge_target(e), weights[e]);
  for (const EdgeChange<W>& c : inserts) {
    b.add_edge(c.src, c.dst, c.weight);
    ClassifiedEdge<W> ce;
    ce.src = c.src;
    ce.dst = c.dst;
    ce.new_weight = c.weight;
    out.inserted.push_back(ce);
  }
  typename GraphBuilder<W>::BuildOptions opts;
  opts.dedup_parallel_edges = false;
  opts.drop_self_loops = false;
  out.graph = b.build(opts);
  return out;
}

}  // namespace adds
