// Deterministic synthetic graph generators.
//
// These stand in for the paper's Lonestar + SuiteSparse corpus (see
// DESIGN.md §2). Each family targets one of the structural classes the
// paper's evaluation distinguishes:
//
//   grid_road        — road networks: near-planar, bounded degree ~4,
//                      high diameter (road-USA, road-CA, ...)
//   kneighbor_mesh   — FEM/mesh matrices: moderate degree (8..48+),
//                      moderate diameter (msdoor, BenElechi1, ...)
//   rmat             — power-law social/web graphs (rmat22, ...)
//   erdos_renyi      — binomial-degree random graphs
//   watts_strogatz   — small-world ring + shortcuts
//   clique_chain     — chains of dense communities (c-big-like)
//   star             — single hub (degenerate parallelism stressor)
//   chain            — path graph (maximum diameter stressor)
//   binary_tree      — log-diameter, degree-3 stressor
//
// All generators are seeded and platform-deterministic (see util/rng.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr_graph.hpp"

namespace adds {

/// Edge weight distribution applied by all generators.
enum class WeightDist : uint8_t {
  kUnit,      // all weights 1 (BFS-like)
  kUniform,   // uniform integers in [1, max_weight]
  kLongTail,  // mostly small with a heavy tail up to max_weight
};

const char* weight_dist_name(WeightDist d);

struct WeightParams {
  WeightDist dist = WeightDist::kUniform;
  uint32_t max_weight = 10000;
  /// Lower bound for kUniform (travel-time-like weights rarely start at 1;
  /// a tight [min, max] band also makes admissible heuristics useful).
  uint32_t min_weight = 1;
};

enum class GraphFamily : uint8_t {
  kGridRoad,
  kKNeighborMesh,
  kRmat,
  kErdosRenyi,
  kWattsStrogatz,
  kCliqueChain,
  kStar,
  kChain,
  kBinaryTree,
};

const char* family_name(GraphFamily f);

/// A fully deterministic description of one synthetic graph. `a`/`b`/`c` are
/// family-specific shape parameters documented per generator below.
struct GraphSpec {
  std::string name;
  GraphFamily family = GraphFamily::kErdosRenyi;
  uint64_t scale = 0;  // family-specific primary size knob
  double a = 0, b = 0, c = 0;
  WeightParams weights;
  uint64_t seed = 1;
};

/// Generates the graph a spec describes.
template <WeightType W>
CsrGraph<W> generate_graph(const GraphSpec& spec);

// --- Individual families (all undirected unless stated otherwise) ---------

/// width x height 4-neighbour grid; scale knob = width, a = height.
template <WeightType W>
CsrGraph<W> make_grid_road(uint64_t width, uint64_t height,
                           const WeightParams& wp, uint64_t seed);

/// Grid where each vertex connects to every vertex within Chebyshev radius
/// `radius` (degree ~ (2r+1)^2 - 1); models FEM meshes. scale = width,
/// a = height, b = radius.
template <WeightType W>
CsrGraph<W> make_kneighbor_mesh(uint64_t width, uint64_t height,
                                uint32_t radius, const WeightParams& wp,
                                uint64_t seed);

/// RMAT power-law: 2^scale vertices, edge_factor * 2^scale directed edges,
/// partition probabilities (a,b,c, 1-a-b-c). Standard (0.57,0.19,0.19).
template <WeightType W>
CsrGraph<W> make_rmat(uint32_t scale, uint32_t edge_factor, double a, double b,
                      double c, const WeightParams& wp, uint64_t seed);

/// G(n, m): n vertices, round(n * avg_degree / 2) undirected edges with
/// uniformly random endpoints.
template <WeightType W>
CsrGraph<W> make_erdos_renyi(uint64_t n, double avg_degree,
                             const WeightParams& wp, uint64_t seed);

/// Ring lattice of degree k with rewiring probability p.
template <WeightType W>
CsrGraph<W> make_watts_strogatz(uint64_t n, uint32_t k, double p,
                                const WeightParams& wp, uint64_t seed);

/// `num_cliques` cliques of `clique_size` vertices, consecutive cliques
/// bridged by a single edge.
template <WeightType W>
CsrGraph<W> make_clique_chain(uint64_t num_cliques, uint32_t clique_size,
                              const WeightParams& wp, uint64_t seed);

/// Hub vertex 0 connected to all others.
template <WeightType W>
CsrGraph<W> make_star(uint64_t n, const WeightParams& wp, uint64_t seed);

/// Path 0-1-2-...-(n-1).
template <WeightType W>
CsrGraph<W> make_chain(uint64_t n, const WeightParams& wp, uint64_t seed);

/// Complete binary tree with n vertices.
template <WeightType W>
CsrGraph<W> make_binary_tree(uint64_t n, const WeightParams& wp,
                             uint64_t seed);

}  // namespace adds
