// Graph transformations: reverse graphs (in-edge access for path
// reconstruction on directed inputs) and symmetry checks.
#pragma once

#include "graph/csr_graph.hpp"

namespace adds {

/// The reverse graph: edge u->v(w) becomes v->u(w).
template <WeightType W>
CsrGraph<W> reverse_graph(const CsrGraph<W>& g);

/// True when for every edge u->v(w) a matching v->u(w) exists (undirected
/// graphs stored as symmetric arcs — all generator outputs qualify).
template <WeightType W>
bool is_symmetric(const CsrGraph<W>& g);

extern template CsrGraph<uint32_t> reverse_graph<uint32_t>(
    const CsrGraph<uint32_t>&);
extern template CsrGraph<float> reverse_graph<float>(const CsrGraph<float>&);
extern template bool is_symmetric<uint32_t>(const CsrGraph<uint32_t>&);
extern template bool is_symmetric<float>(const CsrGraph<float>&);

}  // namespace adds
