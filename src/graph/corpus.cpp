#include "graph/corpus.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace adds {

namespace {

constexpr uint64_t kCorpusSeed = 0xADD5'0001;

class SpecList {
 public:
  /// Adds a spec, deriving a unique deterministic seed from its position.
  void add(std::string name, GraphFamily family, uint64_t scale, double a,
           double b, double c, WeightDist dist, uint32_t max_weight,
           uint64_t seed_salt = 1) {
    GraphSpec s;
    s.name = std::move(name);
    s.family = family;
    s.scale = scale;
    s.a = a;
    s.b = b;
    s.c = c;
    s.weights.dist = dist;
    s.weights.max_weight = max_weight;
    s.seed = mix_seed(kCorpusSeed, (specs_.size() << 8) | seed_salt);
    specs_.push_back(std::move(s));
  }

  std::vector<GraphSpec> take() { return std::move(specs_); }

 private:
  std::vector<GraphSpec> specs_;
};

std::string make_name(const char* base, uint64_t variant, const char* wname,
                      uint64_t seed_salt) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s-%llu-%s-s%llu", base,
                static_cast<unsigned long long>(variant), wname,
                static_cast<unsigned long long>(seed_salt));
  return buf;
}

/// Builds the full 226-spec corpus. The mix is weighted like the paper's:
/// mesh/FEM graphs dominate (SuiteSparse), with substantial road, power-law,
/// random and small-world populations plus a few degenerate stressors.
std::vector<GraphSpec> full_corpus() {
  SpecList out;
  const WeightDist kUni = WeightDist::kUniform;
  const WeightDist kTail = WeightDist::kLongTail;
  const WeightDist kUnit = WeightDist::kUnit;
  auto wname = [](WeightDist d) { return weight_dist_name(d); };

  // --- Road networks: 50 graphs -----------------------------------------
  // Square grids (high diameter, degree ~4).
  for (uint64_t w : {128, 181, 256, 362, 512}) {
    for (WeightDist d : {kUni, kTail, kUnit}) {
      for (uint64_t salt : {1, 2}) {
        out.add(make_name("road-sq", w, wname(d), salt),
                GraphFamily::kGridRoad, w, double(w), 0, 0, d, 10000, salt);
      }
    }
  }
  // Long thin corridors (extreme diameter).
  for (auto [w, h] : std::initializer_list<std::pair<uint64_t, uint64_t>>{
           {1024, 64}, {2048, 64}, {4096, 32}, {1024, 128}}) {
    for (WeightDist d : {kUni, kTail}) {
      out.add(make_name("road-strip", w * 1000 + h, wname(d), 1),
              GraphFamily::kGridRoad, w, double(h), 0, 0, d, 10000, 1);
    }
  }
  // Extra square sizes to round out the family.
  for (uint64_t w : {90, 724}) {
    for (WeightDist d : {kUni, kTail, kUnit}) {
      for (uint64_t salt : {1, 2}) {
        out.add(make_name("road-sq", w, wname(d), salt),
                GraphFamily::kGridRoad, w, double(w), 0, 0, d, 10000, salt);
      }
    }
  }

  // --- FEM meshes: 48 graphs ---------------------------------------------
  for (uint64_t w : {64, 96, 128, 192}) {
    for (uint64_t r : {1, 2, 3}) {
      for (WeightDist d : {kUni, kTail}) {
        out.add(make_name("mesh-sq", w * 100 + r, wname(d), 1),
                GraphFamily::kKNeighborMesh, w, double(w), double(r), 0, d,
                1000, 1);
      }
    }
  }
  for (auto [w, h] : std::initializer_list<std::pair<uint64_t, uint64_t>>{
           {256, 64}, {384, 96}, {512, 128}}) {
    for (uint64_t r : {2, 3}) {
      out.add(make_name("mesh-rect", w * 100 + r, wname(kUni), 1),
              GraphFamily::kKNeighborMesh, w, double(h), double(r), 0, kUni,
              1000, 1);
    }
  }
  for (uint64_t w : {80, 112, 160, 224}) {
    for (uint64_t r : {1, 2, 3}) {
      out.add(make_name("mesh-sq", w * 100 + r, wname(kUni), 2),
              GraphFamily::kKNeighborMesh, w, double(w), double(r), 0, kUni,
              1000, 2);
    }
  }
  for (auto [w, h] : std::initializer_list<std::pair<uint64_t, uint64_t>>{
           {512, 96}, {768, 128}, {1024, 64}}) {
    for (uint64_t r : {1, 2}) {
      out.add(make_name("mesh-rect", w * 100 + r, wname(kUni), 3),
              GraphFamily::kKNeighborMesh, w, double(h), double(r), 0, kUni,
              1000, 3);
    }
  }

  // --- Power-law (RMAT): 40 graphs ---------------------------------------
  for (uint64_t scale : {14, 15, 16}) {
    for (uint64_t ef : {8, 16, 32}) {
      for (WeightDist d : {kUni, kTail}) {
        for (uint64_t salt : {1, 2}) {
          out.add(make_name("rmat", scale * 100 + ef, wname(d), salt),
                  GraphFamily::kRmat, scale, double(ef), 0, 0, d, 10000,
                  salt);
        }
      }
    }
  }
  for (uint64_t ef : {8, 16}) {
    for (WeightDist d : {kUni, kTail}) {
      out.add(make_name("rmat", 1700 + ef, wname(d), 1), GraphFamily::kRmat,
              17, double(ef), 0, 0, d, 10000, 1);
    }
  }

  // --- Random (Erdos-Renyi): 34 graphs -----------------------------------
  for (uint64_t n : {50000, 100000, 200000}) {
    for (uint64_t deg : {4, 8, 16, 32, 64}) {
      for (WeightDist d : {kUni, kTail}) {
        out.add(make_name("er", n / 1000 * 1000 + deg, wname(d), 1),
                GraphFamily::kErdosRenyi, n, double(deg), 0, 0, d, 10000, 1);
      }
    }
  }
  for (uint64_t deg : {4, 8}) {
    for (WeightDist d : {kUni, kTail}) {
      out.add(make_name("er", 400000 + deg, wname(d), 1),
              GraphFamily::kErdosRenyi, 400000, double(deg), 0, 0, d, 10000,
              1);
    }
  }

  // --- Small-world (Watts-Strogatz): 28 graphs ---------------------------
  for (uint64_t n : {65536, 131072}) {
    for (uint64_t k : {8, 16, 32}) {
      for (double p : {0.01, 0.1}) {
        for (uint64_t salt : {1, 2}) {
          out.add(make_name("ws",
                            n / 1024 * 10000 + k * 100 + uint64_t(p * 100),
                            wname(kUni), salt),
                  GraphFamily::kWattsStrogatz, n, double(k), p, 0, kUni,
                  10000, salt);
        }
      }
    }
  }
  for (uint64_t k : {8, 16}) {
    for (uint64_t salt : {1, 2}) {
      out.add(make_name("ws", 25600 + k, wname(kUni), salt),
              GraphFamily::kWattsStrogatz, 262144, double(k), 0.05, 0, kUni,
              10000, salt);
    }
  }

  // --- Community chains (c-big-like): 14 graphs --------------------------
  for (auto [cliques, size] :
       std::initializer_list<std::pair<uint64_t, uint64_t>>{
           {4096, 16}, {1024, 32}, {256, 64}, {8192, 16}, {2048, 32}}) {
    for (WeightDist d : {kUni, kTail}) {
      out.add(make_name("cliquechain", cliques, wname(d), 1),
              GraphFamily::kCliqueChain, cliques, double(size), 0, 0, d,
              10000, 1);
    }
  }
  for (auto [cliques, size] :
       std::initializer_list<std::pair<uint64_t, uint64_t>>{{512, 48},
                                                            {128, 96}}) {
    for (WeightDist d : {kUni, kTail}) {
      out.add(make_name("cliquechain", cliques, wname(d), 2),
              GraphFamily::kCliqueChain, cliques, double(size), 0, 0, d,
              10000, 2);
    }
  }

  // --- Degenerate stressors: 12 graphs -----------------------------------
  for (uint64_t n : {100000, 200000}) {
    for (WeightDist d : {kUni, kUnit}) {
      out.add(make_name("chain", n, wname(d), 1), GraphFamily::kChain, n, 0,
              0, 0, d, 10000, 1);
    }
  }
  for (uint64_t n : {100000, 200000}) {
    out.add(make_name("star", n, wname(kUni), 1), GraphFamily::kStar, n, 0, 0,
            0, kUni, 10000, 1);
  }
  for (uint64_t n : {100000, 200000, 400000}) {
    for (WeightDist d : {kUni, kUnit}) {
      out.add(make_name("btree", n, wname(d), 1), GraphFamily::kBinaryTree, n,
              0, 0, 0, d, 10000, 1);
    }
  }

  return out.take();
}

std::vector<GraphSpec> smoke_corpus() {
  SpecList out;
  const WeightDist kUni = WeightDist::kUniform;
  out.add("smoke-road", GraphFamily::kGridRoad, 48, 48, 0, 0, kUni, 1000, 1);
  out.add("smoke-strip", GraphFamily::kGridRoad, 256, 8, 0, 0, kUni, 1000, 1);
  out.add("smoke-mesh1", GraphFamily::kKNeighborMesh, 32, 32, 1, 0, kUni,
          100, 1);
  out.add("smoke-mesh3", GraphFamily::kKNeighborMesh, 24, 24, 3, 0, kUni,
          100, 1);
  out.add("smoke-rmat", GraphFamily::kRmat, 10, 16, 0, 0, kUni, 1000, 1);
  out.add("smoke-rmat-tail", GraphFamily::kRmat, 11, 8, 0, 0,
          WeightDist::kLongTail, 10000, 1);
  out.add("smoke-er", GraphFamily::kErdosRenyi, 2000, 8, 0, 0, kUni, 1000, 1);
  out.add("smoke-ws", GraphFamily::kWattsStrogatz, 2048, 8, 0.05, 0, kUni,
          1000, 1);
  out.add("smoke-cliques", GraphFamily::kCliqueChain, 64, 16, 0, 0, kUni,
          1000, 1);
  out.add("smoke-chain", GraphFamily::kChain, 4096, 0, 0, 0, kUni, 1000, 1);
  out.add("smoke-star", GraphFamily::kStar, 4096, 0, 0, 0, kUni, 1000, 1);
  out.add("smoke-btree", GraphFamily::kBinaryTree, 4095, 0, 0, 0, kUni, 1000,
          1);
  return out.take();
}

}  // namespace

std::vector<GraphSpec> corpus_specs(CorpusTier tier) {
  switch (tier) {
    case CorpusTier::kSmoke:
      return smoke_corpus();
    case CorpusTier::kDefault: {
      const auto full = full_corpus();
      std::vector<GraphSpec> out;
      for (size_t i = 0; i < full.size(); i += 4) out.push_back(full[i]);
      return out;
    }
    case CorpusTier::kFull:
      return full_corpus();
  }
  throw Error("unknown corpus tier");
}

GraphSpec road_usa_like() {
  GraphSpec s;
  s.name = "road-USA-like";
  s.family = GraphFamily::kGridRoad;
  s.scale = 512;
  s.a = 512;
  s.weights = {WeightDist::kUniform, 10000};
  s.seed = mix_seed(kCorpusSeed, 0xF16A);
  return s;
}

GraphSpec benelechi_like() {
  GraphSpec s;
  s.name = "BenElechi1-like";
  s.family = GraphFamily::kKNeighborMesh;
  s.scale = 384;
  s.a = 96;
  s.b = 2;
  s.weights = {WeightDist::kUniform, 1000};
  s.seed = mix_seed(kCorpusSeed, 0xF16B);
  return s;
}

GraphSpec msdoor_like() {
  GraphSpec s;
  s.name = "msdoor-like";
  s.family = GraphFamily::kKNeighborMesh;
  s.scale = 160;
  s.a = 160;
  s.b = 3;
  s.weights = {WeightDist::kUniform, 1000};
  s.seed = mix_seed(kCorpusSeed, 0xF16C);
  return s;
}

GraphSpec rmat22_like() {
  GraphSpec s;
  s.name = "rmat22-like";
  s.family = GraphFamily::kRmat;
  s.scale = 16;
  s.a = 16;
  s.weights = {WeightDist::kUniform, 10000};
  s.seed = mix_seed(kCorpusSeed, 0xF16D);
  return s;
}

GraphSpec cbig_like() {
  // SuiteSparse's c-big is an LP constraint matrix: low diameter, modest
  // size (the paper's total run is ~3 ms), with enough weight spread that
  // ordering saves real work. A long-tail-weighted random graph reproduces
  // that regime: ADDS saves work but the run is too short for dynamic Δ to
  // settle, so the speedup trails the work saving (Figure 15's point).
  GraphSpec s;
  s.name = "c-big-like";
  s.family = GraphFamily::kWattsStrogatz;
  s.scale = 65536;
  s.a = 8;     // ring degree
  s.b = 0.02;  // rewiring probability
  s.weights = {WeightDist::kLongTail, 100000};
  s.seed = mix_seed(kCorpusSeed, 0xF16E);
  return s;
}

CorpusTier parse_tier(const std::string& s) {
  if (s == "smoke") return CorpusTier::kSmoke;
  if (s == "default") return CorpusTier::kDefault;
  if (s == "full") return CorpusTier::kFull;
  throw Error("unknown corpus tier: " + s + " (want smoke|default|full)");
}

const char* tier_name(CorpusTier t) {
  switch (t) {
    case CorpusTier::kSmoke: return "smoke";
    case CorpusTier::kDefault: return "default";
    case CorpusTier::kFull: return "full";
  }
  return "?";
}

}  // namespace adds
