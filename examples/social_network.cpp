// Social-network analysis: the paper's power-law workload.
//
// Generates an RMAT graph (social-network degree distribution), runs ADDS
// from a hub, and derives reachability and distance-distribution analytics
// — the kind of downstream computation SSSP feeds in practice.
//
//   ./social_network --scale=15 --edge-factor=16
#include <algorithm>
#include <cstdio>

#include "core/solver.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace adds;

int main(int argc, char** argv) {
  CliParser cli("social_network",
                "influence/diffusion analytics over a power-law graph");
  cli.add_option("scale", "log2 of user count", "15");
  cli.add_option("edge-factor", "edges per user", "16");
  cli.add_option("seed", "generator seed", "99");
  if (!cli.parse(argc, argv)) return 0;

  const auto g = make_rmat<uint32_t>(
      uint32_t(cli.integer("scale")), uint32_t(cli.integer("edge-factor")),
      0.57, 0.19, 0.19, {WeightDist::kLongTail, 1000},
      uint64_t(cli.integer("seed")));
  std::printf("social graph: %s users, %s follow edges\n",
              fmt_count(g.num_vertices()).c_str(),
              fmt_count(g.num_edges()).c_str());

  // Find the biggest hub (most-followed user).
  VertexId hub = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (g.out_degree(v) > g.out_degree(hub)) hub = v;
  std::printf("top hub: user %u with degree %s (avg degree %.1f)\n", hub,
              fmt_count(g.out_degree(hub)).c_str(), g.average_degree());

  // "Interaction cost" SSSP from the hub with ADDS.
  EngineConfig cfg;
  const auto res = run_solver(SolverKind::kAdds, g, hub, cfg);
  std::printf("ADDS finished in %s (modelled) / %.1f ms host wall; "
              "%s vertices processed\n",
              fmt_time_us(res.time_us).c_str(), res.wall_ms,
              fmt_count(res.work.items_processed).c_str());

  // Reachability + distance distribution = influence profile of the hub.
  const uint64_t reached = res.reached();
  std::printf("influence: %s of %s users reachable (%.1f%%)\n",
              fmt_count(reached).c_str(),
              fmt_count(g.num_vertices()).c_str(),
              100.0 * double(reached) / double(g.num_vertices()));

  std::vector<double> finite;
  finite.reserve(reached);
  for (const auto d : res.dist)
    if (d != DistTraits<uint32_t>::infinity()) finite.push_back(double(d));

  TextTable t("interaction-cost distribution from the hub");
  t.set_header({"percentile", "cost"});
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    t.add_row({fmt_double(p, 0) + "%",
               fmt_count(uint64_t(percentile(finite, p)))});
  }
  t.print();

  // Degree distribution sketch (the power-law signature).
  Log2Histogram deg_hist(2, 1024);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    deg_hist.add(double(std::max<uint64_t>(1, g.out_degree(v))));
  TextTable d("degree distribution (log2 bins)");
  std::vector<std::string> header, row;
  for (size_t b = 0; b < deg_hist.num_bins(); ++b) {
    header.push_back(deg_hist.label(b));
    row.push_back(fmt_count(deg_hist.count(b)));
  }
  d.set_header(header);
  d.add_row(row);
  d.print();
  return 0;
}
