// The ADDS work queue as a general-purpose concurrent priority scheduler.
//
// The paper's broader claim is that "seemingly ill-suited data structures,
// such as priority queues, can be efficiently implemented for GPUs". This
// example uses the queue outside SSSP entirely: a toy discrete-event task
// system where worker threads push follow-up tasks with deadlines and a
// manager thread hands out the earliest-deadline work — the same
// reservation / WCC-publication / assignment-flag protocol the SSSP engine
// runs on.
//
//   ./worklist_demo --workers=4 --tasks=200000
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "queue/assignment.hpp"
#include "queue/work_queue.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace adds;

namespace {

// A task is a 32-bit payload; its priority is a synthetic "deadline".
// Each processed task spawns children with later deadlines until a depth
// budget is exhausted (top bits of the payload carry remaining depth).
constexpr uint32_t kDepthShift = 24;

struct WorkerState {
  WorkQueue* queue = nullptr;
  AssignmentFlag* flag = nullptr;
  std::atomic<uint64_t>* processed = nullptr;
  uint64_t seed = 0;
};

void worker_main(WorkerState& st) {
  Xoshiro256 rng(st.seed);
  while (true) {
    bool exit = false;
    const auto a = st.flag->poll(exit);
    if (exit) return;
    if (!a) {
      std::this_thread::yield();
      continue;
    }
    Bucket& bucket = st.queue->physical_bucket(a->phys_bucket);
    for (uint32_t i = 0; i < a->count; ++i) {
      const uint32_t task = bucket.read_item(a->start + i);
      const uint32_t depth = task >> kDepthShift;
      st.processed->fetch_add(1, std::memory_order_relaxed);
      if (depth > 0) {
        // Spawn two children with a later deadline (lower priority).
        const double child_deadline =
            st.queue->base_dist() + double(rng.next_below(2000));
        const uint32_t child = ((depth - 1) << kDepthShift) |
                               uint32_t(rng.next_below(1 << kDepthShift));
        st.queue->push(child, child_deadline);
        st.queue->push(child, child_deadline + 500.0);
      }
    }
    bucket.complete(a->count);
    st.flag->done();
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("worklist_demo",
                "the ADDS queue as a generic deadline scheduler");
  cli.add_option("workers", "worker threads", "4");
  cli.add_option("roots", "initial root tasks", "1000");
  cli.add_option("depth", "spawn depth per root", "7");
  if (!cli.parse(argc, argv)) return 0;

  const uint32_t num_workers = uint32_t(cli.integer("workers"));
  const uint32_t roots = uint32_t(cli.integer("roots"));
  const uint32_t depth = uint32_t(cli.integer("depth"));

  BlockPool pool(4096, 4096);
  WorkQueue::Config qcfg;
  qcfg.num_buckets = 16;
  WorkQueue queue(pool, qcfg);
  queue.set_delta(250.0);  // deadline granularity per bucket

  std::atomic<uint64_t> processed{0};
  std::vector<AssignmentFlag> flags(num_workers);
  std::vector<WorkerState> states(num_workers);
  std::vector<std::thread> workers;
  for (uint32_t w = 0; w < num_workers; ++w) {
    states[w] = {&queue, &flags[w], &processed, 1000 + w};
    workers.emplace_back(worker_main, std::ref(states[w]));
  }

  WallTimer timer;
  queue.ensure_capacity_all(1024);
  Xoshiro256 rng(7);
  for (uint32_t r = 0; r < roots; ++r) {
    queue.push((depth << kDepthShift) | r, double(rng.next_below(4000)));
  }

  // Manager loop: identical structure to the SSSP MTB.
  uint64_t rotations = 0;
  uint64_t clean_sweeps = 0;
  while (true) {
    queue.ensure_capacity_all(256 * num_workers + 64);
    while (queue.total_pending() + queue.total_in_flight() > 0 &&
           queue.logical_bucket(0).pending_estimate() == 0 &&
           queue.head_drained()) {
      queue.advance_window();
      ++rotations;
    }
    bool assigned = false;
    for (uint32_t logical = 0; logical < 2; ++logical) {
      Bucket& b = queue.logical_bucket(logical);
      uint32_t avail = b.scan_written_bound() - b.read_ptr();
      for (auto& flag : flags) {
        if (avail == 0) break;
        if (!flag.is_idle()) continue;
        const uint32_t k = std::min(avail, 128u);
        flag.assign({queue.logical_to_physical(logical), b.read_ptr(), k});
        b.advance_read(b.read_ptr() + k);
        avail -= k;
        assigned = true;
      }
    }
    bool all_idle = true;
    for (auto& flag : flags) all_idle &= flag.is_idle();
    bool drained = true;
    for (uint32_t i = 0; i < qcfg.num_buckets; ++i)
      drained &= queue.physical_bucket(i).drained();
    if (!assigned && all_idle && drained) {
      if (++clean_sweeps >= 2) break;
    } else {
      clean_sweeps = 0;
    }
    std::this_thread::yield();
  }
  for (auto& f : flags) f.terminate();
  for (auto& w : workers) w.join();

  const double ms = timer.elapsed_ms();
  const uint64_t expected = uint64_t(roots) * ((1ull << (depth + 1)) - 1);
  TextTable t("deadline scheduler run");
  t.set_header({"metric", "value"});
  t.add_row({"workers", std::to_string(num_workers)});
  t.add_row({"tasks processed", fmt_count(processed.load())});
  t.add_row({"expected tasks", fmt_count(expected)});
  t.add_row({"window rotations", fmt_count(rotations)});
  t.add_row({"wall time", fmt_double(ms, 1) + " ms"});
  t.add_row({"throughput", fmt_count(uint64_t(double(processed.load()) /
                                              (ms / 1e3))) +
                               " tasks/s"});
  t.print();
  if (processed.load() != expected) {
    std::printf("ERROR: task count mismatch!\n");
    return 1;
  }
  std::printf("all spawned tasks executed exactly once — the SRMW protocol "
              "holds outside SSSP too\n");
  return 0;
}
