// Artifact-style batch runner: reproduces the workflow of the paper's
// Zenodo artifact (run_all.sh + verify_against_*).
//
// Given a directory of Galois binary `.gr` graphs (or, with --corpus, the
// built-in smoke corpus), it runs the selected solver over every input and
// writes the artifact's result format — one line per graph:
//
//     <graph_name> <run_time_seconds> <work_count>
//
// plus a per-graph final-distance file, and verifies every solver's
// distances against every other (the artifact's verify step).
//
//   ./artifact_runner --inputs=path/to/dir --solvers=adds,nf
//   ./artifact_runner --corpus=smoke --solvers=adds,nf,gun-bf
//
// Robustness drive-through (docs/RESILIENCE.md): --resilient routes every
// run through run_solver_guarded (watchdog/retry/fallback/audit) and
// --fault-seed arms a deterministic fault plan, so the whole injection x
// recovery matrix is reproducible from the command line:
//
//   ./artifact_runner --corpus=smoke --solvers=adds-host --resilient \
//       --fault-seed=7 --fault-site=push.drop-before-publish --fault-prob=0.02
//
// Crash-safe warm restart (--queries/--pairs mode only): --save-state
// checkpoints the warm service (tenant graphs + landmark tables + result
// cache) through the versioned, checksummed StateStore after the batch
// drains, and --load-state revives a FRESH service from that store and
// replays every distinct query of the batch against it, requiring each
// answer to match the pre-save outcome bit-for-bit:
//
//   ./artifact_runner --corpus=smoke --queries=32 \
//       --save-state=artifact_state --load-state=artifact_state
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <tuple>

#include "core/resilience.hpp"
#include "core/solver.hpp"
#include "core/validate.hpp"
#include "util/fault.hpp"
#include "graph/analysis.hpp"
#include "graph/corpus.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "graph/gr_format.hpp"
#include "service/sssp_service.hpp"
#include "sssp/dijkstra.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace adds;
namespace fs = std::filesystem;

namespace {

void write_distances(const std::string& path,
                     const std::vector<uint64_t>& dist) {
  std::ofstream out(path);
  ADDS_REQUIRE(out.is_open(), "cannot write " + path);
  for (size_t v = 0; v < dist.size(); ++v) {
    out << v << ' ';
    if (dist[v] == DistTraits<uint32_t>::infinity())
      out << "INF";
    else
      out << dist[v];
    out << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("artifact_runner",
                "artifact-style run_all + verify over a graph directory");
  cli.add_option("inputs", "directory containing .gr graphs", "");
  cli.add_option("corpus", "use a built-in corpus tier instead", "");
  cli.add_option("solvers", "comma list of solvers", "adds,nf");
  cli.add_option("out", "output directory", "artifact_out");
  cli.add_flag("resilient",
               "run through run_solver_guarded (watchdog/retry/fallback/"
               "audit); prints a RunReport per run");
  cli.add_option("fault-seed",
                 "arm a deterministic fault plan with this seed (0 = off)",
                 "0");
  cli.add_option("fault-site", "site to arm, or 'all'", "all");
  cli.add_option("fault-prob", "per-hit fire probability", "0.05");
  cli.add_option("fault-delay-us", "stall/delay duration for delay sites",
                 "200");
  cli.add_option("queries",
                 "batch mode: N queries per graph through the warm-engine "
                 "service (0 = off)",
                 "0");
  cli.add_option("sources",
                 "source-vertex file for --queries, one id per line "
                 "(default: deterministic picks)",
                 "");
  cli.add_option("pairs",
                 "p2p batch mode: file of 'src dst' pairs, one per line; "
                 "every pair becomes a point-to-point query against every "
                 "tenant, answered by the landmark oracle / ALT search "
                 "when possible and a full engine solve otherwise",
                 "");
  cli.add_option("engines", "warm engines for --queries mode", "2");
  cli.add_option("save-state",
                 "after the batch drains, checkpoint the warm service "
                 "(graphs + landmark tables + result cache) into this "
                 "directory through the crash-safe StateStore",
                 "");
  cli.add_option("load-state",
                 "revive a fresh service from this directory's store and "
                 "replay every distinct batch query against it; each "
                 "answer must match its pre-save outcome bit-for-bit",
                 "");
  cli.add_option("delta-file",
                 "edge-delta file for --queries mode: one 'u v w' triple "
                 "per line (weight change, or insert if the edge is "
                 "absent), applied to the default graph halfway through "
                 "the batch; cached trees are warm-repaired in place",
                 "");
  if (!cli.parse(argc, argv)) return 0;

  // Collect (name, graph) inputs.
  std::vector<std::pair<std::string, IntGraph>> inputs;
  if (const std::string dir = cli.str("inputs"); !dir.empty()) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ".gr") {
        inputs.emplace_back(entry.path().stem().string(),
                            read_gr<uint32_t>(entry.path().string()));
      }
    }
    ADDS_REQUIRE(!inputs.empty(), "no .gr files in " + dir);
  } else {
    const std::string tier = cli.str("corpus").empty() ? "smoke"
                                                       : cli.str("corpus");
    for (const auto& spec : corpus_specs(parse_tier(tier)))
      inputs.emplace_back(spec.name, generate_graph<uint32_t>(spec));
  }
  std::printf("%zu input graphs\n", inputs.size());

  // --queries / --sources: route a query batch through the warm-engine
  // service instead of the one-shot artifact loop. Every input graph is
  // published as a tenant of ONE shared service (the first is the default
  // route) and the batch interleaves across tenants, so the run exercises
  // the catalog, keyed engine binding and the per-tenant bulkheads; the
  // summary prints one tenant row per graph.
  const int64_t batch_n = cli.integer("queries");
  const std::string sources_file = cli.str("sources");
  const std::string pairs_file = cli.str("pairs");
  if (batch_n > 0 || !sources_file.empty() || !pairs_file.empty()) {
    GraphDelta<uint32_t> file_delta;
    if (const std::string dpath = cli.str("delta-file"); !dpath.empty()) {
      std::ifstream df(dpath);
      ADDS_REQUIRE(df.is_open(), "cannot open " + dpath);
      uint64_t u = 0, v = 0, w = 0;
      while (df >> u >> v >> w)
        file_delta.changes.push_back({VertexId(u), VertexId(v), uint32_t(w)});
      ADDS_REQUIRE(!file_delta.empty(), "no 'u v w' triples in " + dpath);
    }
    std::vector<uint64_t> script;
    if (!sources_file.empty()) {
      std::ifstream sf(sources_file);
      ADDS_REQUIRE(sf.is_open(), "cannot open " + sources_file);
      uint64_t v;
      while (sf >> v) script.push_back(v);
      ADDS_REQUIRE(!script.empty(), "no sources in " + sources_file);
    }
    // --pairs: each line is one 'src dst' point-to-point query; the batch
    // cycles through the file against every tenant.
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    if (!pairs_file.empty()) {
      std::ifstream pf(pairs_file);
      ADDS_REQUIRE(pf.is_open(), "cannot open " + pairs_file);
      uint64_t u = 0, v = 0;
      while (pf >> u >> v) pairs.emplace_back(u, v);
      ADDS_REQUIRE(!pairs.empty(), "no 'src dst' pairs in " + pairs_file);
    }
    const size_t n = batch_n > 0        ? size_t(batch_n)
                     : !pairs.empty()   ? pairs.size()
                                        : script.size();

    ServiceConfig scfg;
    scfg.num_engines = uint32_t(cli.integer("engines"));
    // Every input graph stays resident for the whole batch — the default
    // catalog capacity would LRU-evict the early tenants of a big corpus —
    // and the whole batch must be admissible: the runner submits
    // n × tenants queries in one burst before draining any of them.
    // (+1: a delta's child generation coexists with its parent until the
    // repair window closes — eviction mid-window would drop a tenant row.)
    scfg.tenant.catalog_graphs = std::max(
        scfg.tenant.catalog_graphs,
        inputs.size() + (file_delta.empty() ? 0 : 1));
    // Same residency argument for landmark tables in --pairs mode: every
    // tenant's table must survive to the end of the batch or the LRU
    // would silently downgrade early tenants to the engine path.
    scfg.landmark.max_tables =
        std::max(scfg.landmark.max_tables,
                 inputs.size() + (file_delta.empty() ? 0 : 1));
    scfg.max_queue_depth = uint32_t(std::max<size_t>(
        scfg.max_queue_depth, n * inputs.size()));
    SsspService<uint32_t> svc(scfg);
    std::vector<uint64_t> fps;
    for (size_t k = 0; k < inputs.size(); ++k)
      fps.push_back(k == 0 ? svc.set_graph(inputs[k].second)
                           : svc.publish_graph(inputs[k].second));

    // --pairs rides the oracle: wait for every tenant's landmark table to
    // reach a terminal state so serve outcomes measure the steady state,
    // not the build race. Asymmetric tenants settle as unsupported and
    // their pairs ride the engine path — still exact, still verified.
    if (!pairs.empty()) {
      const auto oracle_settled = [&] {
        size_t done = 0;
        for (const auto& t : svc.report().tenants)
          done += t.oracle_status != LandmarkTableStatus::kNone &&
                  t.oracle_status != LandmarkTableStatus::kBuilding &&
                  t.oracle_status != LandmarkTableStatus::kRepairing;
        return done >= fps.size();
      };
      for (int waited = 0; waited < 30000 && !oracle_settled(); waited += 10)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    WallTimer timer;
    // A repeated (graph, source[, target]) tuple in the burst collapses to
    // ONE submitted query whose shared future fans out to every
    // occurrence — the driver-side analog of the service's
    // duplicate-source lane sharing: one traversal (and one submit)
    // serves them all.
    struct PendingQ {
      size_t k;
      VertexId src;
      VertexId tgt;  // kInvalidVertex outside --pairs mode
      std::shared_future<QueryOutcome<uint32_t>> fut;
    };
    std::vector<PendingQ> futs;
    std::map<std::tuple<size_t, uint64_t, uint64_t>,
             std::shared_future<QueryOutcome<uint32_t>>>
        issued;
    size_t deduped = 0;
    std::vector<uint64_t> ok_per(inputs.size(), 0);
    std::vector<uint64_t> bad_per(inputs.size(), 0);  // p2p oracle mismatches
    // Dijkstra reference distances for --pairs verification, one tree per
    // distinct (tenant, source); tenant 0's slice resets after a delta.
    std::map<std::pair<size_t, uint64_t>, std::vector<DistT<uint32_t>>> ref;
    auto cur = std::make_shared<std::vector<IntGraph>>();  // live generations
    for (const auto& [nm, g] : inputs) cur->push_back(g);
    const auto drain = [&] {
      for (auto& p : futs) {
        const QueryOutcome<uint32_t> out = p.fut.get();
        ok_per[p.k] += out.status == QueryStatus::kOk;
        if (p.tgt == kInvalidVertex || out.status != QueryStatus::kOk)
          continue;
        auto rit = ref.find({p.k, p.src});
        if (rit == ref.end())
          rit = ref.emplace(std::make_pair(p.k, uint64_t(p.src)),
                            dijkstra((*cur)[p.k], p.src).dist)
                    .first;
        const DistT<uint32_t> want = rit->second[p.tgt];
        const bool want_reach = want != DistTraits<uint32_t>::infinity();
        if (out.p2p_reachable != want_reach ||
            (want_reach && out.p2p_distance != want))
          ++bad_per[p.k];
      }
      futs.clear();
    };
    futs.reserve(n * inputs.size());
    for (size_t i = 0; i < n; ++i) {
      for (size_t k = 0; k < inputs.size(); ++k) {
        const auto& g = inputs[k].second;
        const uint64_t raw = !pairs.empty()
                                 ? pairs[i % pairs.size()].first
                             : script.empty() ? pick_source(g, uint64_t(i))
                                              : script[i % script.size()];
        const VertexId src = VertexId(raw % g.num_vertices());
        QueryOptions q;
        q.graph_fp = fps[k];
        if (!pairs.empty())
          q.target =
              VertexId(pairs[i % pairs.size()].second % g.num_vertices());
        const auto dedup_key =
            std::make_tuple(k, uint64_t(src), uint64_t(q.target));
        auto it = issued.find(dedup_key);
        if (it == issued.end()) {
          it = issued.emplace(dedup_key, svc.submit(src, q).share()).first;
        } else {
          ++deduped;
        }
        futs.push_back({k, src, q.target, it->second});
      }
      // --delta-file: rewrite the default graph in place halfway through
      // the batch. Outstanding futures drain first (they were pinned to
      // the parent generation); later rounds pin the child, whose cached
      // trees arrive by warm repair rather than cold solves.
      if (!file_delta.empty() && i + 1 == (n + 1) / 2) {
        drain();
        issued.clear();  // a new generation invalidates the fan-out map
        const auto dout = svc.apply_delta(fps[0], file_delta);
        fps[0] = dout.child_fp;
        (*cur)[0] = apply_delta((*cur)[0], file_delta).graph;
        for (auto rit = ref.begin(); rit != ref.end();)
          rit = rit->first.first == 0 ? ref.erase(rit) : ++rit;
        std::printf("delta file applied to %s: %016llx -> %016llx | "
                    "%llu decreased %llu increased %llu inserted | "
                    "%llu repairs scheduled\n",
                    inputs[0].first.c_str(),
                    (unsigned long long)dout.parent_fp,
                    (unsigned long long)dout.child_fp,
                    (unsigned long long)dout.stats.decreases,
                    (unsigned long long)dout.stats.increases,
                    (unsigned long long)dout.stats.inserts,
                    (unsigned long long)dout.repairs_scheduled);
      }
    }
    const size_t total_q = n * inputs.size();
    drain();
    if (!file_delta.empty())
      for (int waited = 0; waited < 30000 && svc.report().repairs_pending > 0;
           waited += 10)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const double secs = timer.elapsed_ms() / 1e3;
    const auto rep = svc.report();

    const bool p2p_mode = !pairs.empty();
    TextTable t("service batch (" + std::to_string(n) +
                (p2p_mode ? " p2p pairs per graph, " : " queries per graph, ") +
                std::to_string(inputs.size()) + " co-resident tenants)");
    if (p2p_mode)
      t.set_header({"graph", "ok", "oracle", "exact", "alt", "engine",
                    "mismatch", "health", "shed"});
    else
      t.set_header({"graph", "ok", "health", "breaker", "queue", "hits",
                    "shed", "quarantined"});
    bool batch_ok = true;
    for (size_t k = 0; k < inputs.size(); ++k) {
      const TenantStatus* row = nullptr;
      for (const auto& ts : rep.tenants)
        if (ts.graph_fp == fps[k]) row = &ts;
      ADDS_REQUIRE(row != nullptr, "tenant row missing from report");
      batch_ok &= ok_per[k] == n && row->failed == 0 && bad_per[k] == 0;
      if (p2p_mode)
        t.add_row({inputs[k].first, std::to_string(ok_per[k]),
                   landmark_status_name(row->oracle_status),
                   std::to_string(row->oracle_exact_hits),
                   std::to_string(row->alt_searches),
                   std::to_string(row->p2p_engine_fallbacks),
                   std::to_string(bad_per[k]),
                   service_health_name(row->health),
                   std::to_string(row->shed)});
      else
        t.add_row({inputs[k].first, std::to_string(ok_per[k]),
                   service_health_name(row->health),
                   breaker_state_name(row->breaker),
                   std::to_string(row->waiting) + "/" +
                       std::to_string(row->queue_quota),
                   std::to_string(row->cache_hits), std::to_string(row->shed),
                   std::to_string(row->quarantined)});
    }
    t.add_footer("p50 " + fmt_double(rep.latency.p50, 3) + " ms, p99 " +
                 fmt_double(rep.latency.p99, 3) + " ms, " +
                 fmt_double(secs > 0 ? double(total_q) / secs : 0.0, 0) +
                 " qps across the pool, " + std::to_string(deduped) +
                 " repeated sources fanned out, " +
                 std::to_string(rep.batches) + " batched dispatches (" +
                 std::to_string(rep.batched_queries) + " queries)");
    t.print();
    if (p2p_mode)
      std::printf("p2p verification: every answer checked against a Dijkstra "
                  "reference tree; %s\n",
                  batch_ok ? "all exact" : "MISMATCHES FOUND");
    if (!file_delta.empty())
      std::printf("delta repairs: %llu scheduled, %llu ok, %llu fallback, "
                  "%llu pending | stale window serves %llu\n",
                  (unsigned long long)rep.repairs_scheduled,
                  (unsigned long long)rep.repairs_ok,
                  (unsigned long long)rep.repair_fallbacks,
                  (unsigned long long)rep.repairs_pending,
                  (unsigned long long)rep.delta_stale_hits);

    // --save-state: checkpoint the warm service through the crash-safe
    // StateStore. The batch has fully drained, so the snapshot captures
    // every tenant graph, landmark table and cached tree the run produced.
    if (const std::string save_dir = cli.str("save-state");
        !save_dir.empty()) {
      const auto so = svc.save(save_dir);
      ADDS_REQUIRE(so.ok, "state save failed: " + so.error);
      std::printf("state saved: %u graphs, %u tables, %u cache entries | "
                  "%llu sections, %llu bytes -> %s\n",
                  so.graphs, so.tables, so.cache_entries,
                  (unsigned long long)so.sections,
                  (unsigned long long)so.bytes, so.path.c_str());
    }

    // --load-state: the warm-restart round trip. A FRESH service revives
    // from the store (restore verifies every artifact before serving —
    // recomputed fingerprints, a Dijkstra spot check per table, exactness
    // certificates per cache entry) and replays every distinct query of
    // the batch. The pre-save shared futures are the reference: a revived
    // answer that differs from its pre-save twin is a round-trip failure.
    if (const std::string load_dir = cli.str("load-state");
        !load_dir.empty()) {
      SsspService<uint32_t> revived(scfg);
      const auto ro = revived.restore(load_dir);
      ADDS_REQUIRE(ro.store_found, "no state store at " + load_dir);
      ADDS_REQUIRE(ro.ok, "state restore failed: " + ro.error);
      // Corrupt sections degrade to typed cold rebuilds; wait those out so
      // the replay measures answers, not the build race.
      for (int waited = 0;
           waited < 30000 && revived.report().landmark_builds_pending > 0;
           waited += 10)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      uint64_t replayed = 0, warm_hits = 0, wrong = 0;
      for (const auto& [key, fut] : issued) {
        const size_t k = std::get<0>(key);
        const uint64_t src_u = std::get<1>(key);
        const uint64_t tgt_u = std::get<2>(key);
        const QueryOutcome<uint32_t> before = fut.get();
        if (before.status != QueryStatus::kOk) continue;
        QueryOptions q;
        q.graph_fp = fps[k];
        if (tgt_u != uint64_t(kInvalidVertex)) q.target = VertexId(tgt_u);
        ++replayed;
        QueryOutcome<uint32_t> after;
        try {
          after = revived.submit(VertexId(src_u), q).get();
        } catch (const Error&) {
          ++wrong;
          continue;
        }
        warm_hits += after.cache_hit;
        bool same = after.status == QueryStatus::kOk;
        if (same && tgt_u != uint64_t(kInvalidVertex))
          same = after.p2p_reachable == before.p2p_reachable &&
                 (!before.p2p_reachable ||
                  after.p2p_distance == before.p2p_distance);
        else if (same)
          same = before.result != nullptr && after.result != nullptr &&
                 validate_distances(*before.result, *after.result).ok();
        wrong += !same;
      }
      std::printf("warm-restart round trip: %u graphs, %u tables, %u cache "
                  "entries restored (%llu/%llu sections corrupt) | "
                  "%llu queries replayed, %llu warm cache hits, "
                  "%llu mismatches — %s\n",
                  ro.graphs_restored, ro.tables_restored, ro.cache_restored,
                  (unsigned long long)ro.corrupt_sections,
                  (unsigned long long)ro.sections_total,
                  (unsigned long long)replayed,
                  (unsigned long long)warm_hits, (unsigned long long)wrong,
                  wrong == 0 ? "all answers match the pre-save run"
                             : "ROUND-TRIP MISMATCHES FOUND");
      batch_ok &= wrong == 0 && replayed > 0;
    }
    return batch_ok ? 0 : 1;
  }

  std::vector<SolverKind> solvers;
  {
    std::stringstream ss(cli.str("solvers"));
    std::string name;
    while (std::getline(ss, name, ',')) {
      const auto kind = parse_solver(name);
      ADDS_REQUIRE(kind.has_value(), "unknown solver: " + name);
      solvers.push_back(*kind);
    }
  }

  const std::string out_dir = cli.str("out");
  fs::create_directories(out_dir);
  EngineConfig cfg;

  // Optional deterministic fault plan, armed for the whole batch.
  std::unique_ptr<fault::FaultPlan> plan;
  std::optional<fault::FaultScope> fault_scope;
  if (const uint64_t fseed = uint64_t(cli.integer("fault-seed")); fseed != 0) {
    plan = std::make_unique<fault::FaultPlan>(fseed);
    fault::FaultSpec spec;
    spec.probability = cli.real("fault-prob");
    spec.delay_us = uint32_t(cli.integer("fault-delay-us"));
    if (const std::string site = cli.str("fault-site"); site == "all") {
      plan->set_all(spec);
    } else {
      const auto s = fault::parse_site(site);
      ADDS_REQUIRE(s.has_value(), "unknown fault site: " + site);
      plan->set(*s, spec);
    }
    fault_scope.emplace(*plan);
    std::printf("fault plan armed: seed=%llu site=%s prob=%g delay_us=%lld\n",
                (unsigned long long)fseed, cli.str("fault-site").c_str(),
                cli.real("fault-prob"),
                (long long)cli.integer("fault-delay-us"));
  }
  const bool resilient = cli.flag("resilient");
  ResiliencePolicy policy;  // defaults; deadline scales with each graph

  // Per-solver result files and distance dumps, artifact layout:
  //   <out>/<solver>_result            (name time work)
  //   <out>/<solver>_final_dist/<graph>.txt
  std::map<std::string, std::vector<SsspResult<uint32_t>>> all;
  for (const SolverKind kind : solvers) {
    const std::string sname = solver_name(kind);
    std::ofstream result(out_dir + "/" + sname + "_result");
    fs::create_directories(out_dir + "/" + sname + "_final_dist");
    for (const auto& [name, g] : inputs) {
      const VertexId source = pick_source(g);
      auto res = resilient ? run_solver_guarded(kind, g, source, cfg, policy)
                           : run_solver(kind, g, source, cfg);
      result << name << ' ' << (res.time_us / 1e6) << ' '
             << res.work.items_processed << '\n';
      write_distances(out_dir + "/" + sname + "_final_dist/" + name + ".txt",
                      res.dist);
      std::fprintf(stderr, "\r[%s] %-28s", sname.c_str(), name.c_str());
      if (res.resilience != nullptr)
        std::fprintf(stderr, " {%s}\n", res.resilience->summary().c_str());
      all[sname].push_back(std::move(res));
    }
    std::fprintf(stderr, "\n");
  }

  // verify_against_*: pairwise distance comparison across solvers.
  TextTable t("verification (pairwise distance comparison)");
  t.set_header({"solver A", "solver B", "graphs", "mismatching graphs"});
  bool all_ok = true;
  for (size_t a = 0; a < solvers.size(); ++a) {
    for (size_t b = a + 1; b < solvers.size(); ++b) {
      const auto& ra = all[solver_name(solvers[a])];
      const auto& rb = all[solver_name(solvers[b])];
      uint64_t bad = 0;
      for (size_t i = 0; i < ra.size(); ++i)
        if (!validate_distances(ra[i], rb[i]).ok()) ++bad;
      all_ok &= bad == 0;
      t.add_row({solver_name(solvers[a]), solver_name(solvers[b]),
                 std::to_string(ra.size()), std::to_string(bad)});
    }
  }
  t.print();
  std::printf("results in %s/ (artifact format: name time_s work_count)\n",
              out_dir.c_str());
  return all_ok ? 0 : 1;
}
