// Δ tuning explorer: shows why the paper replaces the static Near-Far
// heuristic with run-time feedback.
//
// For a chosen graph the tool (1) sweeps fixed Δ values and reports the
// time/work tradeoff curve, (2) runs ADDS's dynamic controller on the same
// input, and (3) shows where the controller's Δ trajectory settles relative
// to the sweep's best fixed point.
//
//   ./delta_tuning --family=road --scale=17
#include <cmath>
#include <cstdio>

#include "core/solver.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sssp/delta_heuristic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace adds;

namespace {

IntGraph build(const std::string& family, uint64_t scale, uint64_t seed) {
  GraphSpec s;
  s.seed = seed;
  s.weights = {WeightDist::kUniform, 10000};
  if (family == "road") {
    s.family = GraphFamily::kGridRoad;
    s.scale = 1ull << (scale / 2);
    s.a = double(s.scale);
  } else if (family == "rmat") {
    s.family = GraphFamily::kRmat;
    s.scale = scale;
    s.a = 16;
  } else if (family == "mesh") {
    s.family = GraphFamily::kKNeighborMesh;
    s.scale = 1ull << (scale / 2);
    s.a = double(s.scale);
    s.b = 2;
  } else {
    throw Error("unknown --family (want road|rmat|mesh)");
  }
  return generate_graph<uint32_t>(s);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("delta_tuning", "explore the delta tradeoff on one graph");
  cli.add_option("family", "road|rmat|mesh", "road");
  cli.add_option("scale", "size exponent", "16");
  cli.add_option("seed", "generator seed", "31");
  cli.add_option("steps", "sweep points", "11");
  if (!cli.parse(argc, argv)) return 0;

  const auto g =
      build(cli.str("family"), uint64_t(cli.integer("scale")),
            uint64_t(cli.integer("seed")));
  const VertexId source = pick_source(g);
  EngineConfig cfg;
  cfg.gpu = GpuCostModel(GpuSpec::rtx2080ti().scaled(0.25));

  const double heuristic = static_delta(g);
  std::printf("graph: %s vertices, %s edges; Near-Far heuristic delta "
              "(C=32) = %.0f\n",
              fmt_count(g.num_vertices()).c_str(),
              fmt_count(g.num_edges()).c_str(), heuristic);

  // --- Fixed-delta sweep ----------------------------------------------------
  TextTable t("fixed-delta sweep (dynamic selection disabled)");
  t.set_header({"delta", "time", "vertices processed", "window rotations"});
  double best_time = 0;
  double best_delta = 0;
  const int steps = int(cli.integer("steps"));
  for (int i = 0; i < steps; ++i) {
    const double delta = heuristic * std::pow(2.0, i - steps / 2);
    AddsOptions opts;
    opts.dynamic_delta = false;
    opts.delta = delta;
    cfg.adds = opts;
    const auto r = run_solver(SolverKind::kAdds, g, source, cfg);
    t.add_row({fmt_double(delta, 0), fmt_time_us(r.time_us),
               fmt_count(r.work.items_processed),
               fmt_count(r.window_advances)});
    if (best_time == 0 || r.time_us < best_time) {
      best_time = r.time_us;
      best_delta = delta;
    }
  }
  t.add_footer("best fixed delta = " + fmt_double(best_delta, 0) + " at " +
               fmt_time_us(best_time));
  t.print();

  // --- Dynamic controller ---------------------------------------------------
  cfg.adds = AddsOptions{};  // defaults: dynamic on
  const auto dyn = run_solver(SolverKind::kAdds, g, source, cfg);
  std::printf("\ndynamic delta: %s (%.0f%% of best fixed sweep point), "
              "%s vertices processed\n",
              fmt_time_us(dyn.time_us).c_str(),
              100.0 * best_time / dyn.time_us,
              fmt_count(dyn.work.items_processed).c_str());
  std::printf("delta trajectory (head-switch:value):");
  for (const auto& [sw, d] : dyn.delta_history)
    std::printf(" %.0f:%.0f", sw, d);
  std::printf("\nfinal delta %.0f vs best fixed %.0f — the controller finds "
              "the regime without a sweep\n",
              dyn.delta_history.back().second, best_delta);
  return 0;
}
