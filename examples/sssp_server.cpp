// Long-lived SSSP query server over the warm-engine service.
//
// Loads one or more graphs into the service's GraphCatalog — repeat
// --graph / --corpus-graph to publish several tenants; the first one given
// becomes the default route — then spins up an SsspService (pre-spawned
// engines, admission queue, result cache, per-tenant bulkheads) and
// answers a query script from a file or stdin, one query per line:
//
//     <source-vertex> [deadline_ms] [graph-index]
//     p2p <source-vertex> <target-vertex> [deadline_ms] [graph-index]
//     delta <graph-index> <edge-count> [seed]
//     save
//     restore
//
// `save` / `restore` lines (they need --state-dir) checkpoint the serving
// state through the crash-safe StateStore and load it back mid-stream;
// with --state-dir the server also restores an existing store at startup
// before publishing the script graphs, so a restart comes back warm. Each
// save/restore line lands in the CSV as its own row (status `state-saved`
// / `state-restored` / `state-corrupt`) whose trailing columns carry the
// recovery accounting every row has: `recovered_sections` (sections
// written on save; artifacts verified and seated on restore) and
// `load_verify_ms` (read+checksum+decode plus the verification gauntlet).
//
// `p2p` lines ask for one point-to-point distance: when the tenant's
// landmark table is READY and the ALT bounds are tight the answer is
// served straight from the oracle (serve column `oracle-exact`, no
// engine dispatch); otherwise an ALT-guided A* or a full engine solve
// answers it (`alt-search` / `engine-fallback`). --warm-oracle waits for
// every tenant's landmark table to reach a terminal state before the
// script runs, so serve outcomes are deterministic.
//
// `graph-index` picks the tenant by load order (0 = the default); omitted
// queries route to the default graph. A `delta` line rewrites that graph
// in place at its position in the stream: a deterministic batch of
// `edge-count` weight changes plus a few inserts (derived from `seed`,
// default 1) goes through SsspService::apply_delta — cached trees are
// warm-repaired on the rebuilder, the parent serves bounded-stale answers
// while repairs run, and later script lines with that graph-index route
// to the child generation. Blank lines and `#` comments are skipped.
// Every query becomes one CSV row on stdout (or --out), including
// shed / quarantined / failed ones, so the stream is a complete account of
// what the service did:
//
//     id,source,target,graph,status,serve,cache_hit,stale,queue_ms,
//     latency_ms,reached,dist_checksum,p2p_dist,recovered_sections,
//     load_verify_ms
//
// The final ServiceReport (latency percentiles, cache hit rate, engine
// utilization, shed count) goes to stderr, followed by one bulkhead row
// per resident tenant (health, breaker, quota, cache slice).
//
//   ./sssp_server --corpus-graph=smoke-road < queries.txt
//   printf '0\n5\n0\n' | ./sssp_server --corpus-graph=smoke-rmat --engines=2
//   ./sssp_server --graph=road.gr --graph=social.gr --queries=burst.txt
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include "../tests/oracle_util.hpp"
#include "graph/corpus.hpp"
#include "graph/delta.hpp"
#include "graph/fingerprint.hpp"
#include "graph/gr_format.hpp"
#include "service/sssp_service.hpp"
#include "util/cli.hpp"

using namespace adds;

namespace {

IntGraph load_corpus_graph(const std::string& want) {
  for (const CorpusTier tier :
       {CorpusTier::kSmoke, CorpusTier::kDefault, CorpusTier::kFull}) {
    for (const auto& spec : corpus_specs(tier))
      if (spec.name == want) return generate_graph<uint32_t>(spec);
  }
  throw Error("sssp_server: no corpus graph named '" + want + "'");
}

/// Every --graph file, then every --corpus-graph name, in command-line
/// order; the smoke-road default only applies when neither was given.
std::vector<std::shared_ptr<const IntGraph>> load_graphs(
    const CliParser& cli) {
  std::vector<std::shared_ptr<const IntGraph>> graphs;
  for (const std::string& path : cli.list("graph"))
    graphs.push_back(
        std::make_shared<const IntGraph>(read_gr<uint32_t>(path)));
  for (const std::string& name : cli.list("corpus-graph"))
    graphs.push_back(
        std::make_shared<const IntGraph>(load_corpus_graph(name)));
  if (graphs.empty())
    graphs.push_back(std::make_shared<const IntGraph>(
        load_corpus_graph(cli.str("corpus-graph"))));
  return graphs;
}

uint64_t dist_checksum(const std::vector<uint64_t>& dist) {
  return dist.empty() ? 0
                      : fnv1a_bytes(dist.data(),
                                    dist.size() * sizeof(dist[0]));
}

void print_tenant_rows(const ServiceReport& rep) {
  for (const auto& t : rep.tenants)
    std::fprintf(
        stderr,
        "tenant %016llx%s%s | health %s (%llu transitions) | breaker %s "
        "(%llu opens) | ok %llu failed %llu shed %llu quarantined %llu | "
        "repairs %llu ok / %llu fallback / %llu pending | stale serves %llu | "
        "queue %u/%u engines %u/%u | cache %llu hits / %llu misses "
        "(%zu entries) | oracle %s (%u landmarks) exact %llu alt %llu "
        "engine %llu\n",
        (unsigned long long)t.graph_fp, t.is_default ? " [default]" : "",
        t.pinned ? " [pinned]" : "", service_health_name(t.health),
        (unsigned long long)t.health_transitions,
        breaker_state_name(t.breaker), (unsigned long long)t.breaker_opens,
        (unsigned long long)t.completed, (unsigned long long)t.failed,
        (unsigned long long)t.shed, (unsigned long long)t.quarantined,
        (unsigned long long)t.repairs_ok,
        (unsigned long long)t.repair_fallbacks,
        (unsigned long long)t.repairs_pending,
        (unsigned long long)t.delta_stale_hits,
        t.waiting, t.queue_quota, t.occupancy, t.engine_cap,
        (unsigned long long)t.cache_hits, (unsigned long long)t.cache_misses,
        t.cache_entries, landmark_status_name(t.oracle_status),
        t.oracle_landmarks, (unsigned long long)t.oracle_exact_hits,
        (unsigned long long)t.alt_searches,
        (unsigned long long)t.p2p_engine_fallbacks);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("sssp_server",
                "serve SSSP queries from a script over a warm engine pool");
  cli.add_option("graph",
                 "Galois binary .gr graph file (repeatable; first given "
                 "graph is the default route)", "");
  cli.add_option("corpus-graph",
                 "built-in corpus graph name (repeatable)", "smoke-road");
  cli.add_option("queries", "query script file ('-' = stdin)", "-");
  cli.add_option("out", "CSV output file ('-' = stdout)", "-");
  cli.add_option("engines", "warm engines (dispatcher threads)", "2");
  cli.add_option("workers", "worker threads per engine", "4");
  cli.add_option("queue-depth", "admission queue bound", "64");
  cli.add_option("cache-entries", "result cache capacity (0 = off)", "128");
  cli.add_option("deadline-ms", "default per-query deadline (0 = none)", "0");
  cli.add_option("state-dir",
                 "crash-safe state directory: restore an existing store at "
                 "startup and enable save/restore script lines", "");
  cli.add_flag("mirror-deltas",
               "mirror every delta edge so rewritten graphs stay symmetric "
               "and landmark tables warm-repair instead of going "
               "unsupported");
  cli.add_flag("warm-oracle",
               "wait for every tenant's landmark table to reach a terminal "
               "state (ready/failed/unsupported) before running the script");
  cli.add_flag("dump-flightrec",
               "dump the service flight recorder to stderr after the run");
  if (!cli.parse(argc, argv)) return 0;

  auto graphs = load_graphs(cli);  // delta lines advance entries in place

  ServiceConfig cfg;
  cfg.num_engines = uint32_t(cli.integer("engines"));
  cfg.max_queue_depth = uint32_t(cli.integer("queue-depth"));
  cfg.cache_entries = size_t(cli.integer("cache-entries"));
  cfg.default_deadline_ms = cli.real("deadline-ms");
  cfg.engine.num_workers = uint32_t(cli.integer("workers"));
  SsspService<uint32_t> svc(cfg);

  // Warm restart: an existing store is restored (and verified — anything
  // corrupt is dropped typed and rebuilt cold) before the script graphs
  // publish, so a matching tenant comes back with its landmark table and
  // cached trees already seated.
  const std::string state_dir = cli.str("state-dir");
  if (!state_dir.empty()) {
    const auto ro = svc.restore(state_dir);
    if (ro.store_found)
      std::fprintf(stderr,
                   "state restore: %s | %u graphs, %u tables, %u cache "
                   "entries seated | %llu/%llu sections corrupt | %u cold "
                   "rebuilds | load %.2f ms verify %.2f ms%s%s\n",
                   ro.ok ? "ok" : "FAILED", ro.graphs_restored,
                   ro.tables_restored, ro.cache_restored,
                   (unsigned long long)ro.corrupt_sections,
                   (unsigned long long)ro.sections_total, ro.cold_rebuilds,
                   ro.load_ms, ro.verify_ms, ro.error.empty() ? "" : " | ",
                   ro.error.c_str());
    else
      std::fprintf(stderr, "state restore: no store at %s (cold start)\n",
                   state_dir.c_str());
  }

  std::vector<uint64_t> fps;
  fps.push_back(svc.set_graph(graphs[0]));
  for (size_t i = 1; i < graphs.size(); ++i)
    fps.push_back(svc.publish_graph(graphs[i]));
  for (size_t i = 0; i < graphs.size(); ++i)
    std::fprintf(stderr, "graph %zu: %016llx, %u vertices, %llu edges%s\n",
                 i, (unsigned long long)fps[i], graphs[i]->num_vertices(),
                 (unsigned long long)graphs[i]->num_edges(),
                 i == 0 ? " (default)" : "");

  // --warm-oracle: serve outcomes for p2p lines depend on whether the
  // landmark table finished building; waiting here makes them script-
  // deterministic instead of racing the rebuilder thread.
  if (cli.flag("warm-oracle")) {
    const auto settled = [&] {
      size_t done = 0;
      for (const auto& t : svc.report().tenants)
        done += t.oracle_status != LandmarkTableStatus::kNone &&
                t.oracle_status != LandmarkTableStatus::kBuilding &&
                t.oracle_status != LandmarkTableStatus::kRepairing;
      return done >= fps.size();
    };
    for (int waited = 0; waited < 30000 && !settled(); waited += 10)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    for (const auto& t : svc.report().tenants)
      std::fprintf(stderr, "oracle %016llx: %s (%u landmarks)\n",
                   (unsigned long long)t.graph_fp,
                   landmark_status_name(t.oracle_status), t.oracle_landmarks);
  }

  std::ifstream qfile;
  const bool from_stdin = cli.str("queries") == "-";
  if (!from_stdin) {
    qfile.open(cli.str("queries"));
    ADDS_REQUIRE(qfile.is_open(),
                 "cannot open query script " + cli.str("queries"));
  }
  std::istream& in = from_stdin ? std::cin : qfile;

  std::ofstream ofile;
  const bool to_stdout = cli.str("out") == "-";
  if (!to_stdout) {
    ofile.open(cli.str("out"));
    ADDS_REQUIRE(ofile.is_open(), "cannot write " + cli.str("out"));
  }
  std::ostream& csv = to_stdout ? std::cout : ofile;
  csv << "id,source,target,graph,status,serve,cache_hit,stale,queue_ms,"
         "latency_ms,reached,dist_checksum,p2p_dist,recovered_sections,"
         "load_verify_ms\n";

  // Submit every script line, then drain the futures in order. The bounded
  // admission queue does the pacing: a burst larger than the queue simply
  // sheds, and the shed rows land in the CSV like any other outcome.
  // Identical lines (same source, deadline and graph) collapse to ONE
  // submitted query whose shared future fans out to every occurrence —
  // the script-side analog of the service's duplicate-source lane sharing.
  struct Pending {
    VertexId source;
    VertexId target;  // kInvalidVertex for full single-source lines
    size_t graph_idx;
    std::shared_future<QueryOutcome<uint32_t>> fut;
    std::string persist_row;  // non-empty: a pre-rendered save/restore row
  };
  std::vector<Pending> futs;
  std::map<std::tuple<size_t, uint64_t, uint64_t, double>,
           std::shared_future<QueryOutcome<uint32_t>>>
      issued;
  uint64_t deduped = 0, deltas = 0;
  std::string line;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string head;
    ls >> head;
    if (head == "save" || head == "restore") {
      // save / restore: checkpoint the serving state (or load it back)
      // at this position in the stream. The outcome lands in the CSV as
      // its own row so the stream stays a complete account.
      ADDS_REQUIRE(!state_dir.empty(),
                   "sssp_server: '" + head + "' script line needs "
                   "--state-dir");
      // Checkpoint barrier: every earlier line settles first, so the
      // saved (or replaced) state reflects the stream prefix — cache
      // fills from in-flight solves included.
      for (const auto& p : futs)
        if (p.persist_row.empty()) p.fut.wait();
      std::ostringstream row;
      if (head == "save") {
        const auto so = svc.save(state_dir);
        std::fprintf(stderr,
                     "state save: %s | %u graphs, %u tables, %u cache "
                     "entries | %llu sections, %llu bytes -> %s%s%s\n",
                     so.ok ? "ok" : "FAILED", so.graphs, so.tables,
                     so.cache_entries, (unsigned long long)so.sections,
                     (unsigned long long)so.bytes, so.path.c_str(),
                     so.error.empty() ? "" : " | ", so.error.c_str());
        row << "-,-,-,-," << (so.ok ? "state-saved" : "state-corrupt")
            << ",-,-,-,-,-,-,-,-," << so.sections << ",-";
      } else {
        const auto ro = svc.restore(state_dir);
        std::fprintf(stderr,
                     "state restore: %s | %u graphs, %u tables, %u cache "
                     "entries seated | %llu/%llu sections corrupt | %u "
                     "cold rebuilds | load %.2f ms verify %.2f ms%s%s\n",
                     ro.ok ? "ok" : "FAILED", ro.graphs_restored,
                     ro.tables_restored, ro.cache_restored,
                     (unsigned long long)ro.corrupt_sections,
                     (unsigned long long)ro.sections_total, ro.cold_rebuilds,
                     ro.load_ms, ro.verify_ms, ro.error.empty() ? "" : " | ",
                     ro.error.c_str());
        row << "-,-,-,-,"
            << (ro.ok && ro.corrupt_sections == 0 ? "state-restored"
                                                  : "state-corrupt")
            << ",-,-,-,-,-,-,-,-,"
            << (ro.graphs_restored + ro.tables_restored + ro.cache_restored)
            << ',' << (ro.load_ms + ro.verify_ms);
        // The catalog may have gained tenants; dedup against the old
        // world would fan a pre-restore future to post-restore lines.
        issued.clear();
      }
      futs.push_back({0, kInvalidVertex, 0, {}, row.str()});
      continue;
    }
    if (head == "delta") {
      // delta <graph-index> <edge-count> [seed]: rewrite that tenant's
      // graph in place; later lines with this index route to the child.
      size_t graph_idx = 0;
      uint64_t count = 0, dseed = 1;
      ADDS_REQUIRE(bool(ls >> graph_idx >> count) && count > 0,
                   "sssp_server: bad delta line: " + line);
      ADDS_REQUIRE(graph_idx < fps.size(),
                   "sssp_server: graph index out of range: " + line);
      ls >> dseed;
      auto delta = oracle::make_test_delta(
          *graphs[graph_idx], count, count > 4 ? count / 4 : 1, dseed);
      if (cli.flag("mirror-deltas")) {
        // Mirror every change so the child stays symmetric and the
        // tenant's landmark table warm-repairs instead of going typed
        // unsupported (directed deltas break the oracle's symmetry
        // precondition, by design).
        const size_t base = delta.changes.size();
        for (size_t ci = 0; ci < base; ++ci) {
          const auto c = delta.changes[ci];
          if (c.src != c.dst)
            delta.changes.push_back({c.dst, c.src, c.weight});
        }
      }
      const auto out = svc.apply_delta(fps[graph_idx], delta);
      graphs[graph_idx] = std::make_shared<const IntGraph>(
          apply_delta(*graphs[graph_idx], delta).graph);
      fps[graph_idx] = out.child_fp;
      ++deltas;
      std::fprintf(stderr,
                   "delta: graph %zu %016llx -> %016llx | %llu decreased "
                   "%llu increased %llu inserted | %llu repairs scheduled\n",
                   graph_idx, (unsigned long long)out.parent_fp,
                   (unsigned long long)out.child_fp,
                   (unsigned long long)out.stats.decreases,
                   (unsigned long long)out.stats.increases,
                   (unsigned long long)out.stats.inserts,
                   (unsigned long long)out.repairs_scheduled);
      // Futures issued against the old generation must not fan out to
      // lines that now mean the child.
      issued.clear();
      continue;
    }
    uint64_t source = 0;
    QueryOptions q;
    if (head == "p2p") {
      // p2p <src> <dst> [deadline_ms] [graph-index]: one point-to-point
      // distance; the serve column records how it was answered.
      uint64_t target = 0;
      ADDS_REQUIRE(bool(ls >> source >> target),
                   "sssp_server: bad p2p line: " + line);
      q.target = VertexId(target);
    } else {
      std::istringstream hs(head);
      ADDS_REQUIRE(bool(hs >> source) && hs.eof(),
                   "sssp_server: bad query line: " + line);
    }
    ls >> q.deadline_ms;  // optional; 0 = service default
    size_t graph_idx = 0;
    if (ls >> graph_idx) {
      ADDS_REQUIRE(graph_idx < fps.size(),
                   "sssp_server: graph index out of range: " + line);
      q.graph_fp = fps[graph_idx];
    }
    const auto dedup_key = std::make_tuple(graph_idx, source,
                                           uint64_t(q.target), q.deadline_ms);
    auto it = issued.find(dedup_key);
    if (it == issued.end()) {
      it = issued
               .emplace(dedup_key, svc.submit(VertexId(source), q).share())
               .first;
    } else {
      ++deduped;
    }
    futs.push_back({VertexId(source), q.target, graph_idx, it->second, {}});
  }

  uint64_t ok = 0;
  for (auto& p : futs) {
    if (!p.persist_row.empty()) {
      csv << p.persist_row << '\n';
      continue;
    }
    const QueryOutcome<uint32_t> out = p.fut.get();
    ok += out.status == QueryStatus::kOk;
    const bool p2p = p.target != kInvalidVertex;
    csv << out.query_id << ',' << p.source << ',';
    if (p2p)
      csv << p.target;
    else
      csv << '-';
    csv << ',' << p.graph_idx << ',' << query_status_name(out.status) << ','
        << p2p_serve_name(out.p2p_serve) << ',' << (out.cache_hit ? 1 : 0)
        << ',' << (out.stale ? 1 : 0)
        << ',' << out.queue_ms << ',' << out.latency_ms << ','
        << (out.result   ? out.result->reached()
            : p2p && out.status == QueryStatus::kOk ? uint64_t(out.p2p_reachable)
                                                    : 0)
        << ',' << (out.result ? dist_checksum(out.result->dist) : 0) << ',';
    if (p2p && out.status == QueryStatus::kOk && out.p2p_reachable)
      csv << out.p2p_distance;
    else
      csv << '-';
    csv << ",-,-\n";
  }

  // Let in-flight repairs and landmark rebuilds settle so the final report
  // and tenant rows show the converged fleet, not a mid-repair snapshot.
  if (deltas > 0) {
    const auto busy = [&] {
      const ServiceReport rep = svc.report();
      if (rep.repairs_pending > 0 || rep.landmark_builds_pending > 0)
        return true;
      for (const auto& t : rep.tenants)  // catches the in-flight build task
        if (t.oracle_status == LandmarkTableStatus::kBuilding ||
            t.oracle_status == LandmarkTableStatus::kRepairing)
          return true;
      return false;
    };
    for (int waited = 0; waited < 30000 && busy(); waited += 10)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const ServiceReport rep = svc.report();
  std::fprintf(stderr,
               "served %llu/%zu ok | shed %llu expired %llu failed %llu | "
               "cache hit rate %.2f (%llu hits) | p50 %.3f ms p99 %.3f ms | "
               "engine utilization %.2f\n",
               (unsigned long long)ok, futs.size(),
               (unsigned long long)rep.shed,
               (unsigned long long)rep.deadline_expired,
               (unsigned long long)rep.failed, rep.cache_hit_rate,
               (unsigned long long)rep.cache_hits, rep.latency.p50,
               rep.latency.p99, rep.engine_utilization);
  std::fprintf(stderr,
               "health %s | engines %u available / %u retired | "
               "kills %llu quarantines %llu rebuilds %llu | stale hits %llu | "
               "batches %llu (%llu queries, %llu cache fills) | "
               "%llu repeated lines fanned out\n",
               service_health_name(rep.health), rep.engines_available,
               rep.engines_retired, (unsigned long long)rep.supervisor_kills,
               (unsigned long long)rep.quarantines,
               (unsigned long long)rep.rebuilds,
               (unsigned long long)rep.stale_hits,
               (unsigned long long)rep.batches,
               (unsigned long long)rep.batched_queries,
               (unsigned long long)rep.batch_fills,
               (unsigned long long)deduped);
  if (deltas > 0)
    std::fprintf(stderr,
                 "deltas %llu applied | repairs %llu scheduled, %llu ok, "
                 "%llu fallback, %llu pending | stale window serves %llu\n",
                 (unsigned long long)rep.deltas_applied,
                 (unsigned long long)rep.repairs_scheduled,
                 (unsigned long long)rep.repairs_ok,
                 (unsigned long long)rep.repair_fallbacks,
                 (unsigned long long)rep.repairs_pending,
                 (unsigned long long)rep.delta_stale_hits);
  std::fprintf(stderr,
               "oracle: %llu tables (%llu builds, %llu repairs, %llu rebuild "
               "fallbacks, %llu failed, %llu unsupported, %llu evicted, "
               "%u pending) | p2p serves: %llu exact, %llu alt, %llu engine\n",
               (unsigned long long)rep.landmark_tables,
               (unsigned long long)rep.landmark_builds_ok,
               (unsigned long long)rep.landmark_repairs_ok,
               (unsigned long long)rep.landmark_rebuild_fallbacks,
               (unsigned long long)rep.landmark_build_failures,
               (unsigned long long)rep.landmark_unsupported,
               (unsigned long long)rep.landmark_evictions,
               rep.landmark_builds_pending,
               (unsigned long long)rep.oracle_exact_hits,
               (unsigned long long)rep.alt_searches,
               (unsigned long long)rep.p2p_engine_fallbacks);
  if (!state_dir.empty())
    std::fprintf(stderr,
                 "persist: saves %llu ok / %llu failed | restores %llu ok / "
                 "%llu failed | %llu corrupt sections | %llu cold rebuilds | "
                 "restored %llu graphs %llu tables %llu cache entries\n",
                 (unsigned long long)rep.state_saves_ok,
                 (unsigned long long)rep.state_saves_failed,
                 (unsigned long long)rep.state_restores_ok,
                 (unsigned long long)rep.state_restores_failed,
                 (unsigned long long)rep.state_corrupt_sections,
                 (unsigned long long)rep.state_cold_rebuilds,
                 (unsigned long long)rep.state_graphs_restored,
                 (unsigned long long)rep.state_tables_restored,
                 (unsigned long long)rep.state_cache_restored);
  print_tenant_rows(rep);

  if (cli.flag("dump-flightrec")) {
    // The postmortem view: the same ring the service dumps on engine
    // retirement, printed oldest-first so the run reads as a timeline.
    const auto events = svc.flight_dump();
    std::fprintf(stderr, "flight recorder (%zu events):\n", events.size());
    for (const auto& e : events)
      std::fprintf(stderr, "  %s\n", format_flight_event(e).c_str());
  }
  return 0;
}
