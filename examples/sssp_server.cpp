// Long-lived SSSP query server over the warm-engine service.
//
// Loads one graph, spins up an SsspService (pre-spawned engines, admission
// queue, result cache) and then answers a query script from a file or
// stdin, one query per line:
//
//     <source-vertex> [deadline_ms]
//
// Blank lines and `#` comments are skipped. Every query becomes one CSV
// row on stdout (or --out), including shed / expired / failed ones, so the
// stream is a complete account of what the service did:
//
//     id,source,status,cache_hit,queue_ms,latency_ms,reached,dist_checksum
//
// The final ServiceReport (latency percentiles, cache hit rate, engine
// utilization, shed count) goes to stderr.
//
//   ./sssp_server --corpus-graph=smoke-road < queries.txt
//   printf '0\n5\n0\n' | ./sssp_server --corpus-graph=smoke-rmat --engines=2
//   ./sssp_server --graph=road.gr --queries=burst.txt --deadline-ms=50
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "graph/corpus.hpp"
#include "graph/fingerprint.hpp"
#include "graph/gr_format.hpp"
#include "service/sssp_service.hpp"
#include "util/cli.hpp"

using namespace adds;

namespace {

IntGraph load_graph(const CliParser& cli) {
  if (const std::string path = cli.str("graph"); !path.empty())
    return read_gr<uint32_t>(path);
  const std::string want = cli.str("corpus-graph");
  for (const CorpusTier tier :
       {CorpusTier::kSmoke, CorpusTier::kDefault, CorpusTier::kFull}) {
    for (const auto& spec : corpus_specs(tier))
      if (spec.name == want) return generate_graph<uint32_t>(spec);
  }
  throw Error("sssp_server: no corpus graph named '" + want +
              "' (and no --graph file given)");
}

uint64_t dist_checksum(const std::vector<uint64_t>& dist) {
  return dist.empty() ? 0
                      : fnv1a_bytes(dist.data(),
                                    dist.size() * sizeof(dist[0]));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("sssp_server",
                "serve SSSP queries from a script over a warm engine pool");
  cli.add_option("graph", "Galois binary .gr graph file", "");
  cli.add_option("corpus-graph", "built-in corpus graph name", "smoke-road");
  cli.add_option("queries", "query script file ('-' = stdin)", "-");
  cli.add_option("out", "CSV output file ('-' = stdout)", "-");
  cli.add_option("engines", "warm engines (dispatcher threads)", "2");
  cli.add_option("workers", "worker threads per engine", "4");
  cli.add_option("queue-depth", "admission queue bound", "64");
  cli.add_option("cache-entries", "result cache capacity (0 = off)", "128");
  cli.add_option("deadline-ms", "default per-query deadline (0 = none)", "0");
  cli.add_flag("dump-flightrec",
               "dump the service flight recorder to stderr after the run");
  if (!cli.parse(argc, argv)) return 0;

  const IntGraph g = load_graph(cli);
  std::fprintf(stderr, "graph: %u vertices, %llu edges\n", g.num_vertices(),
               (unsigned long long)g.num_edges());

  ServiceConfig cfg;
  cfg.num_engines = uint32_t(cli.integer("engines"));
  cfg.max_queue_depth = uint32_t(cli.integer("queue-depth"));
  cfg.cache_entries = size_t(cli.integer("cache-entries"));
  cfg.default_deadline_ms = cli.real("deadline-ms");
  cfg.engine.num_workers = uint32_t(cli.integer("workers"));
  SsspService<uint32_t> svc(cfg);
  svc.set_graph(g);

  std::ifstream qfile;
  const bool from_stdin = cli.str("queries") == "-";
  if (!from_stdin) {
    qfile.open(cli.str("queries"));
    ADDS_REQUIRE(qfile.is_open(),
                 "cannot open query script " + cli.str("queries"));
  }
  std::istream& in = from_stdin ? std::cin : qfile;

  std::ofstream ofile;
  const bool to_stdout = cli.str("out") == "-";
  if (!to_stdout) {
    ofile.open(cli.str("out"));
    ADDS_REQUIRE(ofile.is_open(), "cannot write " + cli.str("out"));
  }
  std::ostream& csv = to_stdout ? std::cout : ofile;
  csv << "id,source,status,cache_hit,queue_ms,latency_ms,reached,"
         "dist_checksum\n";

  // Submit every script line, then drain the futures in order. The bounded
  // admission queue does the pacing: a burst larger than the queue simply
  // sheds, and the shed rows land in the CSV like any other outcome.
  std::vector<std::pair<VertexId, std::future<QueryOutcome<uint32_t>>>> futs;
  std::string line;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    uint64_t source = 0;
    ADDS_REQUIRE(bool(ls >> source),
                 "sssp_server: bad query line: " + line);
    QueryOptions q;
    ls >> q.deadline_ms;  // optional; 0 = service default
    futs.emplace_back(VertexId(source), svc.submit(VertexId(source), q));
  }

  uint64_t ok = 0;
  for (auto& [source, fut] : futs) {
    const QueryOutcome<uint32_t> out = fut.get();
    ok += out.status == QueryStatus::kOk;
    csv << out.query_id << ',' << source << ','
        << query_status_name(out.status) << ',' << (out.cache_hit ? 1 : 0)
        << ',' << out.queue_ms << ',' << out.latency_ms << ','
        << (out.result ? out.result->reached() : 0) << ','
        << (out.result ? dist_checksum(out.result->dist) : 0) << '\n';
  }

  const ServiceReport rep = svc.report();
  std::fprintf(stderr,
               "served %llu/%zu ok | shed %llu expired %llu failed %llu | "
               "cache hit rate %.2f (%llu hits) | p50 %.3f ms p99 %.3f ms | "
               "engine utilization %.2f\n",
               (unsigned long long)ok, futs.size(),
               (unsigned long long)rep.shed,
               (unsigned long long)rep.deadline_expired,
               (unsigned long long)rep.failed, rep.cache_hit_rate,
               (unsigned long long)rep.cache_hits, rep.latency.p50,
               rep.latency.p99, rep.engine_utilization);
  std::fprintf(stderr,
               "health %s | engines %u available / %u retired | "
               "kills %llu quarantines %llu rebuilds %llu | stale hits %llu\n",
               service_health_name(rep.health), rep.engines_available,
               rep.engines_retired, (unsigned long long)rep.supervisor_kills,
               (unsigned long long)rep.quarantines,
               (unsigned long long)rep.rebuilds,
               (unsigned long long)rep.stale_hits);

  if (cli.flag("dump-flightrec")) {
    // The postmortem view: the same ring the service dumps on engine
    // retirement, printed oldest-first so the run reads as a timeline.
    const auto events = svc.flight_dump();
    std::fprintf(stderr, "flight recorder (%zu events):\n", events.size());
    for (const auto& e : events)
      std::fprintf(stderr, "  %s\n", format_flight_event(e).c_str());
  }
  return 0;
}
