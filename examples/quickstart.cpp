// Quickstart: generate (or load) a graph, run ADDS and the baselines, and
// print times, work counts, and validation results.
//
//   ./quickstart                                  # demo road grid
//   ./quickstart --family=rmat --scale=14
//   ./quickstart --gr=path/to/graph.gr            # Galois binary input
//   ./quickstart --solvers=adds,nf,gun-bf --gpu=rtx3090
#include <cstdio>
#include <sstream>

#include "core/experiment.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/gr_format.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace adds;

namespace {

IntGraph make_input(const CliParser& cli) {
  if (const std::string path = cli.str("gr"); !path.empty())
    return read_gr<uint32_t>(path);

  GraphSpec spec;
  spec.name = "demo";
  spec.seed = uint64_t(cli.integer("seed"));
  spec.weights.max_weight = 10000;
  const std::string family = cli.str("family");
  const uint64_t scale = uint64_t(cli.integer("scale"));
  if (family == "road") {
    spec.family = GraphFamily::kGridRoad;
    spec.scale = 1ull << (scale / 2);
    spec.a = double(spec.scale);
  } else if (family == "rmat") {
    spec.family = GraphFamily::kRmat;
    spec.scale = scale;
    spec.a = 16;  // edge factor
  } else if (family == "mesh") {
    spec.family = GraphFamily::kKNeighborMesh;
    spec.scale = 1ull << (scale / 2);
    spec.a = double(spec.scale);
    spec.b = 2;
  } else if (family == "er") {
    spec.family = GraphFamily::kErdosRenyi;
    spec.scale = 1ull << scale;
    spec.a = 8;
  } else {
    throw Error("unknown --family (want road|rmat|mesh|er)");
  }
  return generate_graph<uint32_t>(spec);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("quickstart", "run ADDS and baselines on one graph");
  cli.add_option("family", "graph family: road|rmat|mesh|er", "road");
  cli.add_option("scale", "size exponent (~log2 vertices)", "16");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("gr", "load a Galois binary .gr instead of generating", "");
  cli.add_option("solvers", "comma list (adds,nf,gun-nf,gun-bf,nv,cpu-ds)",
                 "adds,nf,gun-nf,gun-bf,nv,cpu-ds");
  cli.add_option("gpu", "gpu model: rtx2080ti|rtx3090", "rtx2080ti");
  cli.add_option("gpu-scale", "shrink the GPU model by this factor", "1");
  cli.add_option("trace", "write ADDS parallelism trace CSV to this path",
                 "");
  if (!cli.parse(argc, argv)) return 0;

  const IntGraph g = make_input(cli);
  const GraphSummary info = summarize(g);
  std::printf("graph: %llu vertices, %llu edges, avg degree %.2f, "
              "pseudo-diameter %u, source %u (reaches %.0f%%)\n",
              (unsigned long long)info.num_vertices,
              (unsigned long long)info.num_edges, info.avg_degree,
              info.diameter, info.source, 100.0 * info.reach_fraction);

  EngineConfig cfg;
  const GpuSpec base = cli.str("gpu") == "rtx3090" ? GpuSpec::rtx3090()
                                                   : GpuSpec::rtx2080ti();
  cfg.gpu = GpuCostModel(base.scaled(1.0 / cli.real("gpu-scale")));

  const auto oracle = dijkstra(g, info.source, &cfg.cpu);

  TextTable table("SSSP on " + cfg.gpu.spec().name);
  table.set_header({"solver", "time", "speedup vs nf", "vertices processed",
                    "work vs dijkstra", "steps", "valid"});

  double nf_time = 0.0;
  std::vector<SsspResult<uint32_t>> results;
  std::stringstream solvers(cli.str("solvers"));
  std::string name;
  while (std::getline(solvers, name, ',')) {
    const auto kind = parse_solver(name);
    if (!kind) throw Error("unknown solver: " + name);
    results.push_back(run_solver(*kind, g, info.source, cfg));
    if (name == "nf") nf_time = results.back().time_us;
  }
  results.push_back(oracle);

  for (const auto& r : results) {
    const auto rep = validate_distances(r, oracle);
    table.add_row(
        {r.solver, fmt_time_us(r.time_us),
         nf_time > 0 ? fmt_ratio(nf_time / r.time_us) : "-",
         fmt_count(r.work.items_processed),
         fmt_ratio(double(r.work.items_processed) /
                   double(oracle.work.items_processed)),
         fmt_count(r.supersteps ? r.supersteps : r.window_advances),
         rep.ok() ? "yes" : "NO"});
  }
  table.add_footer("time = modelled GPU/CPU time; see DESIGN.md");
  table.print();

  for (const auto& r : results) {
    if (r.delta_history.size() <= 1) continue;
    std::printf("%s delta history (at head-switch):", r.solver.c_str());
    for (const auto& [sw, d] : r.delta_history)
      std::printf(" %.0f:%.0f", sw, d);
    std::printf("\n");
  }

  if (const std::string path = cli.str("trace"); !path.empty()) {
    CsvWriter csv(path);
    csv.write_header({"solver", "t_us", "edges_in_flight"});
    for (const auto& r : results)
      for (const auto& s : r.trace.resample(400))
        csv.write_row({r.solver, fmt_double(s.t_us, 2),
                       fmt_double(s.edges_in_flight, 0)});
    std::printf("trace written to %s\n", path.c_str());
  }
  return 0;
}
