// Road navigation: the paper's motivating high-diameter workload.
//
// Builds a road-network-like grid, computes single-source shortest paths
// with the *host-thread* ADDS engine (the real concurrent MTB/WTB queue
// protocol running on CPU threads), reconstructs a corner-to-corner route,
// and contrasts the modelled GPU engines on the same input.
//
//   ./road_navigation --width=400 --height=400 --workers=4
#include <cstdio>

#include "core/paths.hpp"
#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sssp/astar.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace adds;

int main(int argc, char** argv) {
  CliParser cli("road_navigation",
                "route planning on a road grid with the host ADDS engine");
  cli.add_option("width", "grid width", "400");
  cli.add_option("height", "grid height", "400");
  cli.add_option("workers", "worker (WTB) threads", "4");
  cli.add_option("max-weight", "max edge travel time", "10000");
  cli.add_option("min-weight", "min edge travel time", "4000");
  cli.add_option("seed", "generator seed", "2026");
  if (!cli.parse(argc, argv)) return 0;

  const uint64_t width = uint64_t(cli.integer("width"));
  const uint64_t height = uint64_t(cli.integer("height"));
  const WeightParams wp{WeightDist::kUniform,
                        uint32_t(cli.integer("max-weight")),
                        uint32_t(cli.integer("min-weight"))};
  const auto g =
      make_grid_road<uint32_t>(width, height, wp, uint64_t(cli.integer("seed")));
  std::printf("road grid %llux%llu: %s intersections, %s road segments\n",
              (unsigned long long)width, (unsigned long long)height,
              fmt_count(g.num_vertices()).c_str(),
              fmt_count(g.num_edges()).c_str());

  // --- SSSP with the real-thread ADDS engine ------------------------------
  const VertexId source = 0;  // top-left corner
  const VertexId target = VertexId(width * height - 1);  // bottom-right

  AddsHostOptions host;
  host.num_workers = uint32_t(cli.integer("workers"));
  host.num_buckets = 16;
  const auto res = adds_host(g, source, host);
  std::printf(
      "adds-host (%u workers): %.1f ms wall, %s vertices processed, "
      "%s window rotations\n",
      host.num_workers, res.wall_ms,
      fmt_count(res.work.items_processed).c_str(),
      fmt_count(res.window_advances).c_str());

  // Validate against the serial oracle before trusting the route.
  const auto oracle = dijkstra(g, source);
  const auto rep = validate_distances(res, oracle);
  std::printf("validation vs Dijkstra: %s\n", rep.summary().c_str());
  if (!rep.ok()) return 1;

  // --- Route reconstruction -------------------------------------------------
  // Grid roads are symmetric, so the graph is its own reverse.
  const auto route = extract_path(g, res.dist, source, target);
  std::printf("route corner-to-corner: %zu hops, total travel time %s\n",
              route.size() - 1, fmt_count(res.dist[target]).c_str());
  std::printf("route preview: ");
  for (size_t i = 0; i < route.size(); i += std::max<size_t>(1, route.size() / 8))
    std::printf("(%llu,%llu) ", (unsigned long long)(route[i] % width),
                (unsigned long long)(route[i] / width));
  std::printf("... (%llu,%llu)\n",
              (unsigned long long)(target % width),
              (unsigned long long)(target / width));

  // --- Point-to-point with goal direction (A*) ------------------------------
  // When only one route matters, goal-directed search beats full SSSP. (The
  // demo routes to the city centre: corner-to-corner on a grid has zero
  // manhattan detour anywhere, which blinds any admissible grid heuristic.)
  const VertexId centre = VertexId((height / 2) * width + width / 2);
  uint32_t min_w = ~0u;
  for (const auto w : g.weights()) min_w = std::min(min_w, w);
  const GridManhattanHeuristic h(width, centre, min_w);
  const auto p2p = astar(g, source, centre, h);
  const auto p2p_plain = point_to_point_dijkstra(g, source, centre);
  std::printf(
      "point-to-point: A* settles %s vertices vs Dijkstra's %s "
      "(%.1fx less work), same distance %s\n",
      fmt_count(p2p.work.items_processed).c_str(),
      fmt_count(p2p_plain.work.items_processed).c_str(),
      double(p2p_plain.work.items_processed) /
          double(p2p.work.items_processed),
      fmt_count(p2p.distance).c_str());

  // --- What would this look like on the modelled GPU? ----------------------
  EngineConfig cfg;
  TextTable t("modelled GPU engines on the same road network");
  t.set_header({"solver", "virtual time", "vertices processed", "steps"});
  for (const SolverKind k :
       {SolverKind::kAdds, SolverKind::kNf, SolverKind::kGunBf}) {
    const auto r = run_solver(k, g, source, cfg);
    t.add_row({r.solver, fmt_time_us(r.time_us),
               fmt_count(r.work.items_processed),
               fmt_count(r.supersteps ? r.supersteps : r.window_advances)});
  }
  t.add_footer("high-diameter graphs are where ADDS's asynchronous window "
               "beats BSP double buffering (paper Fig. 11)");
  t.print();
  return 0;
}
