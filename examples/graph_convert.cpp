// Graph format converter: DIMACS text / MatrixMarket -> Galois binary GR
// (and back to DIMACS), plus a generator mode. Mirrors the conversion step
// the paper's artifact applied to the SuiteSparse collection.
//
//   ./graph_convert --in=web.mtx --out=web.gr
//   ./graph_convert --in=road.gr --out=road.dimacs
//   ./graph_convert --generate=rmat --scale=16 --out=rmat16.gr
#include <cstdio>

#include "graph/analysis.hpp"
#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "graph/gr_format.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace adds;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

IntGraph load(const std::string& path) {
  if (ends_with(path, ".mtx")) return read_matrix_market<uint32_t>(path);
  if (ends_with(path, ".dimacs") || ends_with(path, ".txt"))
    return read_dimacs<uint32_t>(path);
  if (ends_with(path, ".gr")) return read_gr<uint32_t>(path);
  throw Error("cannot infer input format (want .mtx/.dimacs/.gr): " + path);
}

void store(const IntGraph& g, const std::string& path) {
  if (ends_with(path, ".gr")) {
    write_gr(g, path);
  } else if (ends_with(path, ".dimacs") || ends_with(path, ".txt")) {
    write_dimacs(g, path);
  } else {
    throw Error("cannot infer output format (want .gr/.dimacs): " + path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("graph_convert", "convert between GR/DIMACS/MatrixMarket");
  cli.add_option("in", "input file (.gr/.dimacs/.mtx)", "");
  cli.add_option("out", "output file (.gr/.dimacs)", "");
  cli.add_option("generate", "generate instead of reading: rmat|road|er", "");
  cli.add_option("scale", "generator size exponent", "14");
  cli.add_option("seed", "generator seed", "1");
  cli.add_flag("summary", "print a structural summary of the graph");
  if (!cli.parse(argc, argv)) return 0;

  IntGraph g;
  if (const std::string family = cli.str("generate"); !family.empty()) {
    GraphSpec spec;
    spec.seed = uint64_t(cli.integer("seed"));
    spec.weights = {WeightDist::kUniform, 10000};
    const uint64_t scale = uint64_t(cli.integer("scale"));
    if (family == "rmat") {
      spec.family = GraphFamily::kRmat;
      spec.scale = scale;
      spec.a = 16;
    } else if (family == "road") {
      spec.family = GraphFamily::kGridRoad;
      spec.scale = 1ull << (scale / 2);
      spec.a = double(spec.scale);
    } else if (family == "er") {
      spec.family = GraphFamily::kErdosRenyi;
      spec.scale = 1ull << scale;
      spec.a = 8;
    } else {
      throw Error("unknown --generate family: " + family);
    }
    g = generate_graph<uint32_t>(spec);
    std::printf("generated %s graph: %s vertices, %s edges\n",
                family.c_str(), fmt_count(g.num_vertices()).c_str(),
                fmt_count(g.num_edges()).c_str());
  } else {
    const std::string in = cli.str("in");
    ADDS_REQUIRE(!in.empty(), "need --in or --generate");
    g = load(in);
    std::printf("read %s: %s vertices, %s edges\n", in.c_str(),
                fmt_count(g.num_vertices()).c_str(),
                fmt_count(g.num_edges()).c_str());
  }

  if (cli.flag("summary")) {
    const auto s = summarize(g);
    TextTable t("graph summary");
    t.set_header({"metric", "value"});
    t.add_row({"vertices", fmt_count(s.num_vertices)});
    t.add_row({"edges", fmt_count(s.num_edges)});
    t.add_row({"avg degree", fmt_double(s.avg_degree, 2)});
    t.add_row({"max degree", fmt_count(s.max_degree)});
    t.add_row({"avg weight", fmt_double(s.avg_weight, 1)});
    t.add_row({"pseudo-diameter", fmt_count(s.diameter)});
    t.add_row({"reach from best source",
               fmt_double(100.0 * s.reach_fraction, 1) + "%"});
    t.print();
  }

  if (const std::string out = cli.str("out"); !out.empty()) {
    store(g, out);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
