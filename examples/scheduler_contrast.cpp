// Scheduler contrast on real threads: the paper's architectural argument
// without any GPU model in the loop.
//
// Runs the same SSSP instance through the two host engines:
//   * nf-host    — BSP Near-Far: double-buffered pre-allocated arrays, a
//                  barrier per superstep, two priority levels, static Δ;
//   * adds-host  — the ADDS queue: asynchronous MTB/WTB delegation, 32
//                  dynamically-sized buckets.
// Both are real multithreaded programs; differences in supersteps/rotations
// and work are structural, exactly as analysed in the paper's §4-§5.
//
//   ./scheduler_contrast --family=road --scale=16 --threads=4
#include <cstdio>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace adds;

namespace {

IntGraph build(const std::string& family, uint64_t scale, uint64_t seed) {
  GraphSpec s;
  s.seed = seed;
  s.weights = {WeightDist::kUniform, 10000};
  if (family == "road") {
    s.family = GraphFamily::kGridRoad;
    s.scale = 1ull << (scale / 2);
    s.a = double(s.scale);
  } else if (family == "rmat") {
    s.family = GraphFamily::kRmat;
    s.scale = scale;
    s.a = 16;
  } else if (family == "mesh") {
    s.family = GraphFamily::kKNeighborMesh;
    s.scale = 1ull << (scale / 2);
    s.a = double(s.scale);
    s.b = 2;
  } else {
    throw Error("unknown --family (want road|rmat|mesh)");
  }
  return generate_graph<uint32_t>(s);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("scheduler_contrast",
                "BSP Near-Far vs async ADDS, both on real threads");
  cli.add_option("family", "road|rmat|mesh", "road");
  cli.add_option("scale", "size exponent", "16");
  cli.add_option("threads", "worker threads for both engines", "4");
  cli.add_option("seed", "generator seed", "11");
  cli.add_option("runs", "repetitions (report the best wall time)", "3");
  if (!cli.parse(argc, argv)) return 0;

  const auto g = build(cli.str("family"), uint64_t(cli.integer("scale")),
                       uint64_t(cli.integer("seed")));
  const auto info = summarize(g);
  std::printf("graph: %s vertices, %s edges, pseudo-diameter %u\n",
              fmt_count(info.num_vertices).c_str(),
              fmt_count(info.num_edges).c_str(), info.diameter);

  const uint32_t threads = uint32_t(cli.integer("threads"));
  const int runs = int(cli.integer("runs"));
  const auto oracle = dijkstra(g, info.source);

  TextTable t("host engines, " + std::to_string(threads) + " worker threads");
  t.set_header({"engine", "best wall time", "vertices processed",
                "barriers / rotations", "valid"});

  // BSP Near-Far.
  {
    NearFarHostOptions opts;
    opts.num_threads = threads;
    SsspResult<uint32_t> best;
    for (int i = 0; i < runs; ++i) {
      auto res = near_far_host(g, info.source, opts);
      if (best.dist.empty() || res.wall_ms < best.wall_ms)
        best = std::move(res);
    }
    t.add_row({"nf-host (BSP)", fmt_double(best.wall_ms, 1) + " ms",
               fmt_count(best.work.items_processed),
               fmt_count(best.supersteps) + " barriers",
               validate_distances(best, oracle).ok() ? "yes" : "NO"});
  }
  // Async ADDS.
  {
    AddsHostOptions opts;
    opts.num_workers = threads;
    opts.num_buckets = 32;
    SsspResult<uint32_t> best;
    for (int i = 0; i < runs; ++i) {
      auto res = adds_host(g, info.source, opts);
      if (best.dist.empty() || res.wall_ms < best.wall_ms)
        best = std::move(res);
    }
    t.add_row({"adds-host (async)", fmt_double(best.wall_ms, 1) + " ms",
               fmt_count(best.work.items_processed),
               fmt_count(best.window_advances) + " rotations",
               validate_distances(best, oracle).ok() ? "yes" : "NO"});
  }
  t.add_footer("same machine, same threads: the difference is the work "
               "scheduler (paper sections 4-5)");
  t.print();
  return 0;
}
